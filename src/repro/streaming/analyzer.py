"""The streaming analyzer: a push_frame/finish state machine.

Two modes, selected by ``AnalyzerConfig.streaming.warmup_frames``:

* **batch** (``warmup_frames == 0``, the default): every pushed frame
  is buffered; ``finish()`` runs the analyzer's classic seven-stage
  runner over the whole sequence.  This is byte-identical to the
  pre-streaming ``JumpAnalyzer.analyze`` — same stages, policies,
  instrumentation events, parallel fan-out and cancellation points.
* **live** (``warmup_frames >= 2``): the first ``warmup_frames`` frames
  feed an :class:`~repro.segmentation.online.OnlineBackgroundModel`;
  once it freezes, the buffered frames drain through the per-frame path
  and every further ``push_frame`` does O(frame) work — segment
  (Steps 2–5), one :class:`~repro.ga.temporal.TrackingSession` step
  (recovery ladder included), and a guarded provisional event/score
  estimate.  ``finish()`` runs the shared post-tracking tail stages
  (smoothing → events → scoring → measurement, with the same
  retry/fallback policies) and assembles the :class:`JumpAnalysis`.

A stream that ends before its warm-up fills falls back to the batch
path over whatever was buffered, so short clips behave identically in
both modes.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from ..analysis.events import detect_events
from ..config.hashing import config_hash
from ..errors import ReproError, SegmentationError, StreamError, VideoError
from ..ga.temporal import FrameHealth, TemporalPoseTracker, TrackingSession
from ..imaging.image import ensure_rgb
from ..model.annotation import FirstFrameAnnotation, auto_annotate
from ..model.pose import StickPose
from ..pipeline import JumpAnalysis, JumpAnalyzer
from ..runtime import CancellationToken, Instrumentation, StageContext
from ..runtime.trace import StageTiming
from ..scoring.report import JumpScorer
from ..segmentation.online import RunningBackgroundModel
from ..segmentation.pipeline import FrameSegmentation, SegmentationPipeline
from ..tracking import TrackAnalysis, TrackFrameState, TrackManager
from ..video.sequence import VideoSequence


@dataclass(frozen=True, slots=True)
class ProvisionalEstimate:
    """Best current guess at the jump's structure, mid-stream.

    Re-estimated from the raw pose prefix as frames arrive; provisional
    by construction (the final analysis smooths the track first) and
    absent until at least four poses exist.
    """

    frames_seen: int
    takeoff_frame: int
    landing_frame: int
    peak_frame: int
    ground_height: float
    score: float | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the job payload's ``provisional`` block)."""
        return {
            "frames_seen": self.frames_seen,
            "takeoff_frame": self.takeoff_frame,
            "landing_frame": self.landing_frame,
            "peak_frame": self.peak_frame,
            "ground_height": self.ground_height,
            "score": self.score,
        }


@dataclass(frozen=True, slots=True)
class FrameUpdate:
    """What one ``push_frame`` produced.

    ``phase`` is ``"buffering"`` (batch mode), ``"warmup"`` (live mode,
    background not yet frozen) or ``"tracking"`` (live); pose fields
    are populated only while tracking.
    """

    frame_index: int
    frames_seen: int
    phase: str
    pose: StickPose | None = None
    pose_box: tuple[float, float, float, float] | None = None  # x, y, w, h
    health: FrameHealth | None = None
    provisional: ProvisionalEstimate | None = None
    # Per-track outcomes when multi-actor tracking is enabled; the
    # scalar pose/health fields above then mirror the primary track.
    tracks: tuple[TrackFrameState, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (job progress / client printing)."""
        return {
            "frame_index": self.frame_index,
            "frames_seen": self.frames_seen,
            "phase": self.phase,
            "pose": (
                [self.pose.x0, self.pose.y0, *self.pose.angles_deg]
                if self.pose is not None
                else None
            ),
            "pose_box": list(self.pose_box) if self.pose_box else None,
            "health": self.health.to_dict() if self.health else None,
            "provisional": (
                self.provisional.to_dict() if self.provisional else None
            ),
            "tracks": [state.to_dict() for state in self.tracks],
        }


class StreamingAnalyzer:
    """Push-based frame-at-a-time analysis (see module docstring).

    Create via :meth:`repro.pipeline.JumpAnalyzer.open_stream`; the
    stream shares the analyzer's config, stage objects and policies.
    """

    def __init__(
        self,
        analyzer: JumpAnalyzer,
        annotation: FirstFrameAnnotation | None = None,
        rng: np.random.Generator | None = None,
        instrumentation: Instrumentation | None = None,
        cancel_token: CancellationToken | None = None,
        checkpointer: Any = None,
    ) -> None:
        self._analyzer = analyzer
        self.config = analyzer.config
        # Per-stage persistence for the batch finish path (live mode
        # reconstructs state by frame replay instead — see
        # repro.resilience.checkpoint).
        self._checkpointer = checkpointer
        self._given_annotation = annotation
        self._annotation = annotation
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._instrumentation = instrumentation or Instrumentation()
        self._cancel_token = cancel_token
        # Localisation needs the whole clip before the attempt windows
        # are known, so a localising stream buffers every frame and
        # finishes through the batch front-stage — live per-frame
        # tracking (and its provisionals) only applies to the classic
        # one-attempt contract.  See docs/streaming.md.
        self._live = (
            self.config.streaming.warmup_frames > 0
            and not self.config.localization.enabled
        )
        self._buffer: list[np.ndarray] = []
        self._video: VideoSequence | None = None
        self._frames_seen = 0
        self._finished = False
        self._started_at: float | None = None
        # Live-mode state, populated once the background freezes.
        self._segmenter: SegmentationPipeline | None = None
        self._segmentations: list[FrameSegmentation] = []
        self._background = None  # BackgroundResult
        self._session: TrackingSession | None = None
        self._manager: TrackManager | None = None  # multi-actor live mode
        self._provisional: ProvisionalEstimate | None = None

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def frames_seen(self) -> int:
        """Total frames pushed so far."""
        return self._frames_seen

    @property
    def live(self) -> bool:
        """True when this stream analyzes frames as they arrive."""
        return self._live

    @property
    def provisional(self) -> ProvisionalEstimate | None:
        """The latest provisional estimate (live mode, >= 4 poses)."""
        return self._provisional

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def push_frame(self, frame: np.ndarray) -> FrameUpdate:
        """Fold one frame into the analysis and report the new state."""
        if self._finished:
            raise StreamError("push_frame() after finish()")
        if self._cancel_token is not None:
            self._cancel_token.raise_if_cancelled(
                f"frame {self._frames_seen}"
            )
        if self._started_at is None:
            self._started_at = time.perf_counter()
        index = self._frames_seen
        frame = ensure_rgb(frame, f"frame {index}")
        self._frames_seen += 1
        if not self._live:
            self._buffer.append(frame)
            return FrameUpdate(
                frame_index=index,
                frames_seen=self._frames_seen,
                phase="buffering",
            )
        if self._background is None:
            self._buffer.append(frame)
            if len(self._buffer) < self.config.streaming.warmup_frames:
                return FrameUpdate(
                    frame_index=index,
                    frames_seen=self._frames_seen,
                    phase="warmup",
                )
            return self._go_live()
        return self._process_live(frame, index)

    def extend(self, frames: Iterable[np.ndarray]) -> None:
        """Push every frame of an iterable (the batch wrapper's loop).

        In batch mode a whole :class:`VideoSequence` is adopted without
        re-buffering — the zero-copy fast path ``analyze`` uses.
        """
        if (
            not self._live
            and isinstance(frames, VideoSequence)
            and self._video is None
            and not self._buffer
            and not self._finished
        ):
            if self._started_at is None:
                self._started_at = time.perf_counter()
            self._video = frames
            self._frames_seen += len(frames)
            return
        for frame in frames:
            self.push_frame(frame)

    # ------------------------------------------------------------------
    # Live path
    # ------------------------------------------------------------------
    def _go_live(self) -> FrameUpdate:
        """Freeze the background on the warm-up buffer and drain it."""
        streaming = self.config.streaming
        segmenter = SegmentationPipeline(
            self.config.segmentation,
            instrumentation=self._instrumentation,
        )
        if (
            streaming.background == "running"
            and not self.config.segmentation.use_median_background
        ):
            model = RunningBackgroundModel(
                self.config.segmentation.change_detection,
                min_frames=streaming.warmup_frames,
            )
        else:
            # "warmup", or a median background (which has no exact
            # incremental form): buffer the prefix, freeze through the
            # batch estimator.
            model = segmenter.background_model(
                warmup_frames=streaming.warmup_frames
            )
        with self._instrumentation.span("segmentation/fit_background"):
            for frame in self._buffer:
                model.observe(frame)
            background = model.freeze()
        segmenter.set_background(background)
        self._segmenter = segmenter
        self._background = background
        drained, self._buffer = self._buffer, []
        update: FrameUpdate | None = None
        for offset, frame in enumerate(drained):
            update = self._process_live(frame, offset)
        assert update is not None  # warmup_frames >= 2 frames drained
        return update

    def _process_live(self, frame: np.ndarray, index: int) -> FrameUpdate:
        """Segment and track one frame; refresh the provisional state."""
        seg = self._segmenter.segment(frame)
        self._segmentations.append(seg)
        mask = seg.person
        if self.config.tracking.enabled:
            return self._process_live_multi(seg, mask, index)
        if self._session is None:
            if not mask.any():
                raise SegmentationError(
                    "no human object found in the first frame; cannot "
                    "anchor the stick model"
                )
            if self._annotation is None:
                self._annotation = auto_annotate(mask)
                self._instrumentation.count("annotation.automatic", 1)
            tracker = TemporalPoseTracker(
                self._annotation.dims,
                self.config.tracker,
                instrumentation=self._instrumentation,
            )
            self._session = tracker.start(self._annotation.pose, rng=self._rng)
            pose = self._annotation.pose
            health = self._session.latest_health
        else:
            pose, health = self._session.step(mask)
        self._refresh_provisional(index)
        return FrameUpdate(
            frame_index=index,
            frames_seen=self._frames_seen,
            phase="tracking",
            pose=pose,
            pose_box=self._pose_box(pose),
            health=health,
            provisional=self._provisional,
        )

    def _process_live_multi(
        self, seg: FrameSegmentation, mask: np.ndarray, index: int
    ) -> FrameUpdate:
        """One frame through the :class:`TrackManager` (multi-actor).

        The scalar pose/health fields of the update mirror the current
        primary track (most frames so far) so single-actor consumers of
        the stream keep working; ``tracks`` carries every track's
        outcome.  An empty first frame is not an error here — tracks
        spawn whenever their actor first appears.
        """
        if self._manager is None:
            self._manager = TrackManager(
                self.config.tracker,
                self.config.tracking,
                rng=self._rng,
                instrumentation=self._instrumentation,
                seed_annotation=self._annotation,
            )
        states = self._manager.step(mask, seg.candidates)
        pose = health = pose_box = None
        if self._manager.tracks:
            primary = self._manager.primary_track()
            if primary.alive:
                pose = primary.latest_pose
                health = primary.latest_health
                pose_box = self._pose_box(pose, primary.annotation.dims)
                self._refresh_provisional(
                    index,
                    poses=primary.session.poses,
                    dims=primary.annotation.dims,
                )
        return FrameUpdate(
            frame_index=index,
            frames_seen=self._frames_seen,
            phase="tracking",
            pose=pose,
            pose_box=pose_box,
            health=health,
            provisional=self._provisional,
            tracks=states,
        )

    def _pose_box(
        self, pose: StickPose, dims=None
    ) -> tuple[float, float, float, float]:
        """Axis-aligned bounding box of the stick figure (x, y, w, h)."""
        segments = pose.segments(dims if dims is not None else self._annotation.dims)
        xs, ys = segments[..., 0], segments[..., 1]
        x_min, y_min = float(xs.min()), float(ys.min())
        return (
            x_min,
            y_min,
            float(xs.max()) - x_min,
            float(ys.max()) - y_min,
        )

    def _refresh_provisional(self, index: int, poses=None, dims=None) -> None:
        """Re-estimate events/score on the pose prefix, never raising.

        ``poses``/``dims`` default to the single-actor session's; the
        multi-actor path passes the primary track's.
        """
        streaming = self.config.streaming
        if not streaming.provisional_events:
            return
        if poses is None:
            poses = self._session.poses
            dims = self._annotation.dims
        if len(poses) < 4 or index % streaming.provisional_every:
            return
        try:
            events = detect_events(poses, dims)
        except ReproError:
            return
        score: float | None = None
        if streaming.provisional_scoring:
            try:
                # A private scorer: provisional passes must not inflate
                # the stream's own rule counters.
                report = JumpScorer().score(
                    poses, takeoff_frame=events.takeoff_frame
                )
                score = report.score
            except ReproError:
                score = None
        self._provisional = ProvisionalEstimate(
            frames_seen=self._frames_seen,
            takeoff_frame=events.takeoff_frame,
            landing_frame=events.landing_frame,
            peak_frame=events.peak_frame,
            ground_height=events.ground_height,
            score=score,
        )

    # ------------------------------------------------------------------
    # Finish
    # ------------------------------------------------------------------
    def finish(self) -> JumpAnalysis:
        """Close the stream and assemble the final analysis."""
        if self._finished:
            raise StreamError("finish() called twice")
        self._finished = True
        if self._session is None and self._manager is None:
            # Batch mode — or a live stream that ended inside its
            # warm-up, which degenerates to the batch path over the
            # buffered prefix.
            return self._finish_batch()
        return self._finish_live()

    def _finish_batch(self) -> JumpAnalysis:
        if self._video is not None and not self._buffer:
            video = self._video
        elif self._video is not None:
            video = VideoSequence(list(self._video) + self._buffer)
        elif self._buffer:
            video = VideoSequence(self._buffer)
        else:
            raise VideoError(
                "cannot analyze a zero-frame video; the sequence needs at "
                "least one frame to segment and anchor the stick model"
            )
        return self._analyzer._analyze_batch(
            video,
            annotation=self._given_annotation,
            rng=self._rng,
            instrumentation=self._instrumentation,
            cancel_token=self._cancel_token,
            checkpointer=self._checkpointer,
        )

    def _finish_live(self) -> JumpAnalysis:
        if self._cancel_token is not None:
            self._cancel_token.raise_if_cancelled("finish")
        config_dict = self.config.to_dict()
        resolved_hash = config_hash(config_dict)
        context = StageContext(
            instrumentation=self._instrumentation,
            cancel_token=self._cancel_token,
        )
        tracks: tuple[TrackAnalysis, ...] = ()
        if self._manager is not None:
            # Multi-actor live mode: per-track tails, primary anchors
            # the legacy top-level fields (same shape as the batch
            # multi path in JumpAnalyzer._stage_tracking_multi).
            primary = self._manager.primary_track()
            reportable = list(self._manager.confirmed_tracks()) or [primary]
            collected = []
            for track in reportable:
                try:
                    collected.append(
                        self._analyzer._finish_track(track, context)
                    )
                except ReproError:
                    if track is primary:
                        raise
                    self._instrumentation.event(
                        "tracking/track_tail_failed", track_id=track.track_id
                    )
            tracks = tuple(collected)
            tracking = primary.result()
            self._annotation = primary.annotation
        else:
            tracking = self._session.result()
        context.artifacts["annotation"] = self._annotation
        context.artifacts["rng"] = self._rng
        context.artifacts["segmentations"] = tuple(self._segmentations)
        context.artifacts["background"] = self._background.background
        context.artifacts["tracking"] = tracking
        context.metadata["config"] = config_dict
        context.metadata["config_hash"] = resolved_hash
        outcome = self._analyzer.tail_runner().run(
            tracking.poses, context=context
        )
        trace = self._synthesize_trace(outcome.trace)
        artifacts = outcome.context.artifacts
        diagnostics = self._analyzer._build_diagnostics(tracking, trace)
        self._analyzer._augment_diagnostics(diagnostics, tracks)
        return JumpAnalysis(
            segmentations=tuple(self._segmentations),
            background=self._background.background,
            annotation=self._annotation,
            tracking=tracking,
            poses=artifacts["poses"],
            events=artifacts["events"],
            report=artifacts["report"],
            measurement=artifacts["measurement"],
            trace=trace,
            config=config_dict,
            config_hash=resolved_hash,
            diagnostics=diagnostics,
            tracks=tracks,
        )

    def _synthesize_trace(self, tail_trace):
        """Prepend per-frame stage totals to the tail runner's trace.

        The live path has no top-level segmentation/tracking stage
        spans (work happened per frame), so the trace's stage table is
        rebuilt from the accumulated sub-spans; ``total_seconds`` is
        the wall-clock from the first push to finish.
        """
        inst = self._instrumentation
        seg_seconds = sum(
            timing.seconds
            for timing in inst.timings()
            if timing.name.startswith("segmentation/")
        )
        head = (
            StageTiming("segmentation", seg_seconds),
            StageTiming("tracking", inst.seconds("tracking/frame")),
        )
        elapsed = (
            time.perf_counter() - self._started_at
            if self._started_at is not None
            else tail_trace.total_seconds
        )
        return dataclasses.replace(
            tail_trace,
            stages=head + tail_trace.stages,
            total_seconds=elapsed,
        )
