"""Chaos harness: run one analysis per fault and report survival.

:func:`run_chaos` takes a clean video (plus its first-frame
annotation), a fault plan and an analyzer config, then for each fault
spec builds a fresh :class:`~repro.pipeline.JumpAnalyzer`, injects the
fault, and records a :class:`FaultOutcome` — did the analysis complete
(*survived*), did it need recovery or fallback (*degraded*), and which
frames/stages the diagnostics flagged.  The bundle is a
:class:`ChaosReport` with a survival rate and a renderable table; the
CLI's ``chaos`` subcommand and the CI smoke step are thin wrappers.

Everything is deterministic: fault RNGs are seeded per spec, and the
analysis RNG is reseeded identically for every run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .injectors import apply_stage_faults, inject_video_faults
from .plan import FRAME_FAULT_KINDS, STAGE_FAULT_KINDS, FaultPlan, FaultSpec


@dataclass(frozen=True, slots=True)
class FaultOutcome:
    """What one fault did to one analysis."""

    spec: FaultSpec
    survived: bool
    degraded: bool = False
    error_type: str = ""
    error: str = ""
    unhealthy_frames: tuple[int, ...] = ()
    degraded_stages: tuple[str, ...] = ()
    elapsed_seconds: float = 0.0

    @property
    def verdict(self) -> str:
        """``ok`` / ``degraded`` / ``failed`` for display."""
        if not self.survived:
            return "failed"
        return "degraded" if self.degraded else "ok"

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready record of this outcome."""
        return {
            "fault": self.spec.label(),
            "kind": self.spec.kind,
            "survived": self.survived,
            "degraded": self.degraded,
            "verdict": self.verdict,
            "error_type": self.error_type,
            "error": self.error,
            "unhealthy_frames": list(self.unhealthy_frames),
            "degraded_stages": list(self.degraded_stages),
            "elapsed_seconds": round(self.elapsed_seconds, 3),
        }


@dataclass(frozen=True, slots=True)
class ChaosReport:
    """Outcomes of one chaos sweep."""

    outcomes: tuple[FaultOutcome, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "outcomes", tuple(self.outcomes))

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def survival_rate(self) -> float:
        """Fraction of faults the pipeline survived (1.0 when empty)."""
        if not self.outcomes:
            return 1.0
        survived = sum(1 for o in self.outcomes if o.survived)
        return survived / len(self.outcomes)

    @property
    def degraded_rate(self) -> float:
        """Fraction of surviving runs that needed recovery/fallback."""
        survivors = [o for o in self.outcomes if o.survived]
        if not survivors:
            return 0.0
        return sum(1 for o in survivors if o.degraded) / len(survivors)

    def failures(self) -> tuple[FaultOutcome, ...]:
        """The faults that killed the analysis."""
        return tuple(o for o in self.outcomes if not o.survived)

    def render_table(self) -> str:
        """Fixed-width table of every outcome."""
        header = f"{'fault':<34} {'verdict':<10} {'detail'}"
        lines = [header, "-" * len(header)]
        for o in self.outcomes:
            if not o.survived:
                detail = f"{o.error_type}: {o.error}"
            elif o.degraded:
                parts = []
                if o.unhealthy_frames:
                    parts.append(f"frames {list(o.unhealthy_frames)}")
                if o.degraded_stages:
                    parts.append(f"stages {list(o.degraded_stages)}")
                detail = ", ".join(parts) or "degraded"
            else:
                detail = "clean"
            lines.append(f"{o.spec.label():<34} {o.verdict:<10} {detail}")
        lines.append(
            f"survival {self.survival_rate:.0%} "
            f"({len(self.outcomes) - len(self.failures())}/"
            f"{len(self.outcomes)}), degraded {self.degraded_rate:.0%} "
            "of survivors"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form of the whole sweep."""
        return {
            "survival_rate": self.survival_rate,
            "degraded_rate": self.degraded_rate,
            "num_faults": len(self.outcomes),
            "outcomes": [o.to_dict() for o in self.outcomes],
        }


def default_fault_grid(
    seed: int = 0,
    stage: str = "tracking",
    include_delay: bool = False,
) -> FaultPlan:
    """One fault of every kind: frame faults at the middle frame plus a
    ``stage_exception`` in ``stage`` (and optionally a ``stage_delay``).
    """
    specs = [
        FaultSpec(kind=kind, frame=-1, seed=seed) for kind in FRAME_FAULT_KINDS
    ]
    specs.append(FaultSpec(kind="stage_exception", stage=stage, seed=seed))
    if include_delay:
        specs.append(
            FaultSpec(
                kind="stage_delay", stage=stage, magnitude=0.05, seed=seed
            )
        )
    return FaultPlan(tuple(specs))


def run_chaos(
    video,
    annotation=None,
    config=None,
    plan: FaultPlan | None = None,
    rng_seed: int = 0,
    streaming: bool = False,
) -> ChaosReport:
    """Run one analysis per fault in ``plan`` and collect the outcomes.

    ``video``/``annotation``/``config`` mirror
    :func:`repro.pipeline.analyze_video`; ``plan`` defaults to
    :func:`default_fault_grid`.  Analyses that raise are recorded as
    non-survivals, never propagated — chaos reports, it does not crash.
    Errors while *setting up* a fault (an invalid plan, e.g. a frame
    index out of range) propagate instead: a harness misconfiguration
    is not a pipeline non-survival.

    With ``streaming=True`` every faulted video is fed frame by frame
    through :meth:`~repro.pipeline.JumpAnalyzer.open_stream` instead of
    one :meth:`analyze` call.  Under the default configuration
    (``streaming.warmup_frames == 0``) the stream buffers and runs the
    identical batch pipeline, so survival must match batch exactly;
    with a live config (``warmup_frames >= 2``) the sweep exercises the
    per-frame recovery ladder under fire.
    """
    from ..pipeline import JumpAnalyzer

    if plan is None:
        plan = default_fault_grid()

    outcomes: list[FaultOutcome] = []
    for spec in plan:
        single = FaultPlan((spec,))
        # Fault setup runs outside the survival try-block: a bad plan
        # (frame out of range, unknown stage) is a harness error and
        # must raise, not score against the pipeline's survival rate.
        faulted_video = inject_video_faults(video, single)
        analyzer = apply_stage_faults(JumpAnalyzer(config), single)
        start = time.perf_counter()
        try:
            if streaming:
                stream = analyzer.open_stream(
                    annotation=annotation,
                    rng=np.random.default_rng(rng_seed),
                )
                for frame in faulted_video:
                    stream.push_frame(frame)
                analysis = stream.finish()
            else:
                analysis = analyzer.analyze(
                    faulted_video,
                    annotation=annotation,
                    rng=np.random.default_rng(rng_seed),
                )
        except Exception as exc:  # noqa: BLE001 — chaos records, it
            # does not crash; any escape IS the finding.
            outcomes.append(
                FaultOutcome(
                    spec=spec,
                    survived=False,
                    error_type=type(exc).__name__,
                    error=str(exc),
                    elapsed_seconds=time.perf_counter() - start,
                )
            )
            continue
        diag = analysis.diagnostics
        outcomes.append(
            FaultOutcome(
                spec=spec,
                survived=True,
                degraded=analysis.degraded,
                unhealthy_frames=tuple(diag.get("unhealthy_frames", ())),
                degraded_stages=tuple(diag.get("degraded_stages", ())),
                elapsed_seconds=time.perf_counter() - start,
            )
        )
    return ChaosReport(tuple(outcomes))
