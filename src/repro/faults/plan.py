"""Declarative fault plans.

A :class:`FaultSpec` names one deterministic fault — either a *frame
fault* that perturbs the input video before the pipeline sees it
(dropped frame, blanked silhouette, sensor noise, occlusion, dtype
corruption) or a *stage fault* that perturbs the pipeline itself (an
injected exception or delay inside a named stage).  A
:class:`FaultPlan` is an ordered bundle of specs; the chaos harness
(:mod:`repro.faults.chaos`) runs one analysis per spec and reports
which faults the configured pipeline survived.

Everything is seeded and reproducible: the same plan against the same
video and config yields the same outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError

#: Fault kinds that rewrite video frames before analysis.
FRAME_FAULT_KINDS = (
    "drop_frame",
    "blank_silhouette",
    "noise_burst",
    "occlude_band",
    "corrupt_dtype",
)

#: Fault kinds that perturb a pipeline stage during analysis.
STAGE_FAULT_KINDS = (
    "stage_exception",
    "stage_delay",
)

#: Every registered fault kind, frame faults first.
FAULT_KINDS = FRAME_FAULT_KINDS + STAGE_FAULT_KINDS


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One deterministic fault to inject.

    ``frame`` selects the target frame for frame faults (``-1`` means
    "the middle frame", resolved against the actual video length);
    ``stage`` selects the target stage for stage faults; ``magnitude``
    scales the severity (noise sigma, band height, delay seconds);
    ``times`` bounds how many stage invocations fail before the stage
    recovers (``stage_exception`` only); ``seed`` drives the fault's
    private RNG.
    """

    kind: str
    frame: int = -1
    stage: str = "tracking"
    magnitude: float = 1.0
    times: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; known kinds: "
                f"{list(FAULT_KINDS)}"
            )
        if self.frame < -1:
            raise ConfigurationError(
                "fault frame must be >= 0, or -1 for the middle frame"
            )
        if self.magnitude <= 0:
            raise ConfigurationError("fault magnitude must be positive")
        if self.times < 1:
            raise ConfigurationError("fault times must be >= 1")

    @property
    def is_frame_fault(self) -> bool:
        """True when this fault rewrites video frames."""
        return self.kind in FRAME_FAULT_KINDS

    @property
    def is_stage_fault(self) -> bool:
        """True when this fault perturbs a pipeline stage."""
        return self.kind in STAGE_FAULT_KINDS

    def resolve_frame(self, num_frames: int) -> int:
        """The concrete target frame for a ``num_frames``-long video."""
        if num_frames <= 0:
            raise ConfigurationError("cannot target a frame of an empty video")
        if self.frame == -1:
            return num_frames // 2
        if self.frame >= num_frames:
            raise ConfigurationError(
                f"fault targets frame {self.frame} but the video has only "
                f"{num_frames} frames"
            )
        return self.frame

    def label(self) -> str:
        """Short human-readable identity, e.g. ``noise_burst@frame``."""
        target = f"frame {self.frame}" if self.is_frame_fault else self.stage
        return f"{self.kind}({target})"


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """An ordered bundle of faults to exercise."""

    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def frame_faults(self) -> tuple[FaultSpec, ...]:
        """Only the faults that rewrite video frames."""
        return tuple(f for f in self.faults if f.is_frame_fault)

    def stage_faults(self) -> tuple[FaultSpec, ...]:
        """Only the faults that perturb pipeline stages."""
        return tuple(f for f in self.faults if f.is_stage_fault)

    def describe(self) -> str:
        """One-line summary, e.g. ``3 faults: drop_frame(...), …``."""
        if not self.faults:
            return "empty fault plan"
        labels = ", ".join(spec.label() for spec in self.faults)
        noun = "fault" if len(self.faults) == 1 else "faults"
        return f"{len(self.faults)} {noun}: {labels}"
