"""Fault injection and chaos testing.

The robustness counterpart of :mod:`repro.video.synthesis`: where the
synthesiser produces *clean* jumps with ground truth, this package
produces *damaged* inputs and *misbehaving* stages, so the recovery
ladder (:class:`~repro.ga.temporal.RecoveryConfig`), the stage
policies (:class:`~repro.pipeline.RobustnessConfig`) and the hardened
service can be exercised deterministically.

* :mod:`repro.faults.plan` — :class:`FaultSpec` / :class:`FaultPlan`,
  the declarative "what to break";
* :mod:`repro.faults.injectors` — the :data:`FAULTS` registry of
  seeded frame corruptors plus stage wrappers;
* :mod:`repro.faults.chaos` — :func:`run_chaos`, one analysis per
  fault, summarised in a :class:`ChaosReport` (the CLI ``chaos``
  subcommand and the CI smoke step);
* :mod:`repro.faults.ops` — :func:`run_ops_chaos`, process-level
  chaos against the crash-safe lifecycle (kill/restart/wedge/drain/
  breaker), summarised in an :class:`OpsChaosReport` (``slj chaos
  --ops``).
"""

from .chaos import ChaosReport, FaultOutcome, default_fault_grid, run_chaos
from .ops import (
    OPS_FAULT_KINDS,
    OpsChaosReport,
    OpsFaultOutcome,
    run_ops_chaos,
)
from .injectors import (
    FAULTS,
    apply_stage_faults,
    fault_kinds,
    inject_video_faults,
)
from .plan import (
    FAULT_KINDS,
    FRAME_FAULT_KINDS,
    STAGE_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "FAULTS",
    "FAULT_KINDS",
    "FRAME_FAULT_KINDS",
    "OPS_FAULT_KINDS",
    "STAGE_FAULT_KINDS",
    "ChaosReport",
    "FaultOutcome",
    "FaultPlan",
    "FaultSpec",
    "OpsChaosReport",
    "OpsFaultOutcome",
    "apply_stage_faults",
    "default_fault_grid",
    "fault_kinds",
    "inject_video_faults",
    "run_chaos",
    "run_ops_chaos",
]
