"""Deterministic fault injectors.

Frame faults are pure functions ``(frames, spec, rng) -> frames``
registered in :data:`FAULTS` — they receive a *writable copy* of the
``(T, H, W, 3)`` float stack and return the perturbed stack (possibly
with fewer frames, for ``drop_frame``).  Every pixel they synthesise
stays a valid ``[0, 1]`` RGB value, so the corruption reaches the
pipeline's algorithms rather than dying in input validation.

Stage faults wrap a :class:`~repro.pipeline.JumpAnalyzer`'s composed
stages in place: ``stage_exception`` makes a named stage raise a
:class:`~repro.errors.ReproError` for its first ``times`` invocations
(so retries can observe recovery), ``stage_delay`` stalls it by
``magnitude`` seconds (exercising service deadlines).
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from .plan import FaultPlan, FaultSpec
from ..errors import ConfigurationError, ReproError
from ..registry import Registry
from ..video.sequence import VideoSequence

#: Registry of frame-fault injectors:
#: ``kind -> (frames, spec, rng) -> frames``.
FAULTS: Registry[
    Callable[[np.ndarray, FaultSpec, np.random.Generator], np.ndarray]
] = Registry("fault injector")


def _background_estimate(frames: np.ndarray) -> np.ndarray:
    """Per-pixel temporal median — the moving person mostly vanishes."""
    return np.median(frames, axis=0)


@FAULTS.register("drop_frame")
def _drop_frame(
    frames: np.ndarray, spec: FaultSpec, rng: np.random.Generator
) -> np.ndarray:
    index = spec.resolve_frame(frames.shape[0])
    if frames.shape[0] < 2:
        raise ConfigurationError("cannot drop the only frame of a video")
    return np.delete(frames, index, axis=0)


@FAULTS.register("blank_silhouette")
def _blank_silhouette(
    frames: np.ndarray, spec: FaultSpec, rng: np.random.Generator
) -> np.ndarray:
    # Replace the frame with the estimated background: subtraction then
    # finds no foreground, so the tracker sees an empty silhouette.
    index = spec.resolve_frame(frames.shape[0])
    frames[index] = _background_estimate(frames)
    return frames


@FAULTS.register("noise_burst")
def _noise_burst(
    frames: np.ndarray, spec: FaultSpec, rng: np.random.Generator
) -> np.ndarray:
    index = spec.resolve_frame(frames.shape[0])
    sigma = 0.25 * spec.magnitude
    noisy = frames[index] + rng.normal(0.0, sigma, size=frames[index].shape)
    frames[index] = np.clip(noisy, 0.0, 1.0)
    return frames


@FAULTS.register("occlude_band")
def _occlude_band(
    frames: np.ndarray, spec: FaultSpec, rng: np.random.Generator
) -> np.ndarray:
    # Paint a horizontal background-coloured band across the frame
    # centre — an object passing in front of the jumper.
    index = spec.resolve_frame(frames.shape[0])
    height = frames.shape[1]
    half = max(1, int(round(0.15 * spec.magnitude * height)))
    centre = height // 2
    lo, hi = max(0, centre - half), min(height, centre + half)
    frames[index, lo:hi, :, :] = _background_estimate(frames)[lo:hi]
    return frames


@FAULTS.register("corrupt_dtype")
def _corrupt_dtype(
    frames: np.ndarray, spec: FaultSpec, rng: np.random.Generator
) -> np.ndarray:
    # Simulate a decode/dtype mishap: crush the frame to a handful of
    # quantisation levels and sprinkle seeded salt speckle.  Values stay
    # valid [0, 1] floats, but the content is garbage.
    index = spec.resolve_frame(frames.shape[0])
    levels = 3
    crushed = np.round(frames[index] * (levels - 1)) / (levels - 1)
    salt = rng.random(crushed.shape[:2]) < 0.05 * spec.magnitude
    crushed[salt] = 1.0
    frames[index] = crushed
    return frames


def inject_video_faults(video: VideoSequence, plan: FaultPlan) -> VideoSequence:
    """Apply every frame fault in ``plan`` to a copy of ``video``."""
    frames = np.array(video.frames, copy=True)
    for spec in plan.frame_faults():
        injector = FAULTS.get(spec.kind)
        frames = injector(frames, spec, np.random.default_rng(spec.seed))
    return VideoSequence(frames)


class _FaultedStage:
    """Wrap a stage so its first ``times`` runs raise, or every run stalls."""

    __slots__ = ("name", "_inner", "_spec", "_remaining")

    def __init__(self, inner, spec: FaultSpec) -> None:
        self.name = inner.name
        self._inner = inner
        self._spec = spec
        self._remaining = spec.times

    def run(self, value, context):
        if self._spec.kind == "stage_delay":
            time.sleep(self._spec.magnitude)
        elif self._spec.kind == "stage_exception" and self._remaining > 0:
            self._remaining -= 1
            raise ReproError(
                f"injected fault in stage {self.name!r} "
                f"({self._remaining} failure(s) remaining)"
            )
        return self._inner.run(value, context)

    def __repr__(self) -> str:
        return f"_FaultedStage({self.name!r}, {self._spec.kind})"


def apply_stage_faults(analyzer, plan: FaultPlan):
    """Rewire ``analyzer`` so the plan's stage faults fire during runs.

    The analyzer's composed runner is rebuilt with the targeted stages
    wrapped; retry/fallback policies and the pipeline name are
    preserved.  Returns the same analyzer for chaining.
    """
    from ..runtime import PipelineRunner

    specs = plan.stage_faults()
    if not specs:
        return analyzer
    runner = analyzer.runner
    by_stage: dict[str, list[FaultSpec]] = {}
    for spec in specs:
        if spec.stage not in runner.stage_names:
            raise ConfigurationError(
                f"fault targets unknown stage {spec.stage!r}; stages are: "
                f"{list(runner.stage_names)}"
            )
        by_stage.setdefault(spec.stage, []).append(spec)
    stages = []
    for stage in runner.stages:
        for spec in by_stage.get(stage.name, ()):
            stage = _FaultedStage(stage, spec)
        stages.append(stage)
    analyzer._runner = PipelineRunner(
        stages, name=runner.name, policies=runner.policies
    )
    return analyzer


def fault_kinds() -> tuple[str, ...]:
    """Names of every registered frame-fault injector."""
    return FAULTS.names()
