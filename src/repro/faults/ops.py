"""Process-level chaos: kill, restart, wedge, drain, trip — and survive.

Where :mod:`repro.faults.chaos` corrupts *inputs* and *stages*,
this module attacks the *operational* layer built in
:mod:`repro.resilience`: a worker dying mid-job, a service restarting
mid-stream, a worker wedging past the watchdog, a drain under load and
a circuit breaker tripping and recovering.  Each scenario is an
in-process simulation of the corresponding process-level failure
(crash points are simulated at exactly the state a killed process
leaves behind: persisted store + input spool + stage checkpoints), so
the sweep is deterministic and runs in CI without orchestrating real
processes.

The gate is stricter than survival alone: every scenario also asserts
**zero leaked pool slots** — after the dust settles the worker pool
must report no outstanding reclaimed slots and no in-flight work —
and **zero leaked shared-memory segments**: whatever a scenario did to
its workers, no ``slj-*`` segment may remain in ``/dev/shm`` when it
ends.  ``slj chaos --ops`` wraps :func:`run_ops_chaos` and fails the
build when the survival rate drops below ``--min-survival``.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from ..errors import CircuitOpen, ReproError
from ..jobs import JobManager, JobsConfig, JobStore
from ..perf.pool import WorkerPool
from ..resilience import JobCheckpointer, spool_input
from ..serialization import annotation_to_dict

#: Scenario names, in sweep order.
OPS_FAULT_KINDS: tuple[str, ...] = (
    "kill_worker_mid_job",
    "restart_service_mid_stream",
    "wedge_worker_past_watchdog",
    "drain_under_load",
    "breaker_trip_recover",
)


class _SimulatedKill(BaseException):
    """Raised from inside a pipeline to model SIGKILL.

    A ``BaseException`` on purpose: it must tunnel through the
    pipeline's ``except Exception`` recovery layers exactly like a real
    kill signal tears through them, leaving the on-disk state (store
    snapshot, spool, checkpoints) as the only witness.
    """


class _KillingCheckpointer:
    """Checkpointer wrapper that "kills the process" after one stage.

    Delegates everything to the real :class:`JobCheckpointer`, then
    raises :class:`_SimulatedKill` right after the configured stage's
    checkpoint hits disk — the exact instant a crash is most
    interesting (state persisted, job unfinished).
    """

    def __init__(self, inner: JobCheckpointer, kill_after: str) -> None:
        self._inner = inner
        self._kill_after = kill_after

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def __call__(self, stage: str, value: Any, context: Any) -> None:
        self._inner(stage, value, context)
        if stage == self._kill_after:
            raise _SimulatedKill(f"simulated kill after {stage!r}")


@dataclass(frozen=True, slots=True)
class OpsFaultOutcome:
    """What one operational fault did to the lifecycle machinery."""

    name: str
    survived: bool
    detail: str = ""
    error_type: str = ""
    error: str = ""
    leaked_slots: int = 0
    leaked_shm: int = 0
    elapsed_seconds: float = 0.0

    @property
    def verdict(self) -> str:
        """``ok`` / ``leaked`` / ``failed`` for display."""
        if not self.survived:
            return "failed"
        return "leaked" if self.leaked_slots or self.leaked_shm else "ok"

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready record of this outcome."""
        return {
            "fault": self.name,
            "survived": self.survived,
            "verdict": self.verdict,
            "detail": self.detail,
            "error_type": self.error_type,
            "error": self.error,
            "leaked_slots": self.leaked_slots,
            "leaked_shm": self.leaked_shm,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
        }


@dataclass(frozen=True, slots=True)
class OpsChaosReport:
    """Outcomes of one operational chaos sweep."""

    outcomes: tuple[OpsFaultOutcome, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "outcomes", tuple(self.outcomes))

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def survival_rate(self) -> float:
        """Fraction of scenarios that survived *without leaks*."""
        if not self.outcomes:
            return 1.0
        good = sum(
            1
            for o in self.outcomes
            if o.survived and not o.leaked_slots and not o.leaked_shm
        )
        return good / len(self.outcomes)

    def failures(self) -> tuple[OpsFaultOutcome, ...]:
        """Scenarios that failed outright or leaked slots/segments."""
        return tuple(
            o
            for o in self.outcomes
            if not o.survived or o.leaked_slots or o.leaked_shm
        )

    def render_table(self) -> str:
        """Fixed-width table of every outcome."""
        header = f"{'fault':<30} {'verdict':<10} {'detail'}"
        lines = [header, "-" * len(header)]
        for o in self.outcomes:
            detail = (
                f"{o.error_type}: {o.error}" if not o.survived else o.detail
            )
            if o.leaked_slots:
                detail = f"{o.leaked_slots} leaked slot(s); {detail}"
            if o.leaked_shm:
                detail = f"{o.leaked_shm} leaked shm segment(s); {detail}"
            lines.append(f"{o.name:<30} {o.verdict:<10} {detail}")
        lines.append(
            f"survival {self.survival_rate:.0%} "
            f"({len(self.outcomes) - len(self.failures())}/"
            f"{len(self.outcomes)})"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form of the whole sweep."""
        return {
            "survival_rate": self.survival_rate,
            "num_faults": len(self.outcomes),
            "outcomes": [o.to_dict() for o in self.outcomes],
        }


def _shm_segment_names() -> set[str]:
    """This project's shared-memory segments currently in /dev/shm."""
    import os

    from ..perf import shm

    if not os.path.isdir("/dev/shm"):  # non-Linux
        return set()
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return set()
    return {
        name for name in entries if name.startswith(shm.SEGMENT_PREFIX)
    }


def _wait_for(predicate: Callable[[], bool], timeout: float = 30.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


def _terminal(manager: JobManager, job_id: str) -> bool:
    payload = manager.payload(job_id)
    return payload is not None and payload["state"] in (
        "succeeded",
        "failed",
        "cancelled",
    )


def _pool_leaks(pool: WorkerPool) -> int:
    """Outstanding reclaimed slots (a wedged zombie that never exited)."""
    return int(pool.stats().get("reclaimed", 0))


def _payload_sans_trace(payload: dict[str, Any]) -> dict[str, Any]:
    clean = dict(payload)
    clean.pop("trace", None)
    return clean


class _WedgedAnalyzer:
    """Blocks in ``analyze`` until released, ignoring cancellation."""

    def __init__(self) -> None:
        import threading

        self.release = threading.Event()
        self.entered = threading.Event()

    def analyze(self, video, **_kwargs) -> Any:  # noqa: ANN001
        self.entered.set()
        self.release.wait(60.0)
        raise ReproError("wedged analyzer released without a result")


class _FailingAnalyzer:
    """Always fails analysably (a 422-class error, feeds the breaker)."""

    def analyze(self, video, **_kwargs) -> Any:  # noqa: ANN001
        raise ReproError("injected stage failure")


class _QuickAnalyzer:
    """Succeeds instantly — fits under even a sub-second soft deadline."""

    def analyze(self, video, **_kwargs) -> dict[str, Any]:  # noqa: ANN001
        return {"ok": True}


def run_ops_chaos(
    video,
    annotation=None,
    config=None,
    seed: int = 0,
    state_root: str | None = None,
) -> OpsChaosReport:
    """Run every operational chaos scenario and collect the outcomes.

    ``video``/``annotation``/``config`` mirror :func:`run_chaos`;
    ``state_root`` (a scratch directory for store snapshots, spools and
    checkpoints) defaults to a temp dir removed afterwards.  Scenario
    errors are recorded as non-survivals, never propagated.
    """
    owns_root = state_root is None
    root = Path(state_root or tempfile.mkdtemp(prefix="slj-ops-chaos-"))
    root.mkdir(parents=True, exist_ok=True)
    scenarios: tuple[tuple[str, Callable[..., OpsFaultOutcome]], ...] = (
        ("kill_worker_mid_job", _scenario_kill_mid_job),
        ("restart_service_mid_stream", _scenario_restart_mid_stream),
        ("wedge_worker_past_watchdog", _scenario_wedge_past_watchdog),
        ("drain_under_load", _scenario_drain_under_load),
        ("breaker_trip_recover", _scenario_breaker_trip_recover),
    )
    outcomes: list[OpsFaultOutcome] = []
    try:
        for name, scenario in scenarios:
            start = time.perf_counter()
            segments_before = _shm_segment_names()
            try:
                outcome = scenario(
                    video, annotation, config, seed, root / name
                )
            except Exception as exc:  # noqa: BLE001 — chaos records,
                # it does not crash; any escape IS the finding.
                outcome = OpsFaultOutcome(
                    name=name,
                    survived=False,
                    error_type=type(exc).__name__,
                    error=str(exc),
                    leaked_shm=len(_shm_segment_names() - segments_before),
                    elapsed_seconds=time.perf_counter() - start,
                )
            else:
                outcome = OpsFaultOutcome(
                    name=outcome.name,
                    survived=outcome.survived,
                    detail=outcome.detail,
                    error_type=outcome.error_type,
                    error=outcome.error,
                    leaked_slots=outcome.leaked_slots,
                    leaked_shm=len(_shm_segment_names() - segments_before),
                    elapsed_seconds=time.perf_counter() - start,
                )
            outcomes.append(outcome)
    finally:
        if owns_root:
            shutil.rmtree(root, ignore_errors=True)
    return OpsChaosReport(tuple(outcomes))


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def _scenario_kill_mid_job(
    video, annotation, config, seed: int, state: Path
) -> OpsFaultOutcome:
    """SIGKILL a worker right after a stage checkpoint; restart; resume.

    Phase 1 reproduces the on-disk state of a killed process: the job
    persisted as ``running``, its inputs spooled, and the pipeline torn
    down by :class:`_SimulatedKill` just after the segmentation
    checkpoint.  Phase 2 boots a fresh manager over the same state and
    asserts the job *resumes* and produces the same payload as an
    uninterrupted run (modulo the wall-clock trace).
    """
    from ..config import config_hash, config_to_dict
    from ..pipeline import JumpAnalyzer
    from ..serialization import analysis_payload

    state.mkdir(parents=True, exist_ok=True)
    persist = str(state / "jobs.json")
    checkpoints = str(state / "checkpoints")
    analyzer = JumpAnalyzer(config)
    resolved = config_to_dict(analyzer.config)
    resolved_hash = config_hash(resolved)

    # The reference: the same analysis, never interrupted.
    reference = _payload_sans_trace(
        analysis_payload(
            analyzer.analyze(
                video,
                annotation=annotation,
                rng=np.random.default_rng(seed),
            )
        )
    )

    # Phase 1: the doomed process.
    store = JobStore(persist_path=persist)
    payload = store.create(
        JobStore.digest_of("ops-kill", str(seed), resolved_hash),
        seed=seed,
        config_hash=resolved_hash,
    )
    job_id = payload["id"]
    store.mark_running(job_id)
    spool_input(
        checkpoints,
        job_id,
        mode="batch",
        seed=seed,
        config=resolved,
        annotation=(
            None if annotation is None else annotation_to_dict(annotation)
        ),
        frames=video.frames,
    )
    checkpointer = _KillingCheckpointer(
        JobCheckpointer(checkpoints, job_id, resolved_hash),
        kill_after="segmentation",
    )
    try:
        analyzer.analyze(
            video,
            annotation=annotation,
            rng=np.random.default_rng(seed),
            checkpointer=checkpointer,
        )
    except _SimulatedKill:
        pass
    else:
        raise ReproError("simulated kill never fired")

    # Phase 2: the replacement process.
    pool = WorkerPool(2, thread_name_prefix="ops-kill")
    jobs_config = JobsConfig(
        persist_path=persist, checkpoint_dir=checkpoints
    )
    manager = JobManager(jobs_config, pool)
    try:
        recovered = manager.recover(lambda _cfg: JumpAnalyzer(config))
        if recovered != [job_id]:
            raise ReproError(
                f"expected to recover [{job_id!r}], got {recovered!r}"
            )
        if not _wait_for(lambda: _terminal(manager, job_id)):
            raise ReproError("recovered job never reached a terminal state")
        final = manager.payload(job_id, include_result=True)
        survived = (
            final is not None
            and final["state"] == "succeeded"
            and final.get("resumed") is True
            and _payload_sans_trace(final.get("result") or {}) == reference
        )
        detail = "resumed after kill; payload matches uninterrupted run"
        if not survived:
            detail = (
                f"state={final and final['state']}, "
                f"resumed={final and final.get('resumed')}, "
                f"payload_match="
                f"{final and _payload_sans_trace(final.get('result') or {}) == reference}"
            )
        return OpsFaultOutcome(
            name="kill_worker_mid_job",
            survived=survived,
            detail=detail,
            leaked_slots=_pool_leaks(pool),
        )
    finally:
        manager.close()
        pool.shutdown(wait=True)


def _scenario_restart_mid_stream(
    video, annotation, config, seed: int, state: Path
) -> OpsFaultOutcome:
    """Restart the service mid-stream; the client reconnects and finishes.

    Phase 1 leaves behind what a killed service holds for a half-fed
    stream: the job persisted as ``running``, its meta spooled and the
    first half of the frames spooled as chunks (no ``eof``).  Phase 2
    recovers — the worker replays the spool — then the "reconnecting
    client" pushes the second half and ``eof``, and the job must score.
    """
    from ..config import config_hash, config_to_dict
    from ..pipeline import JumpAnalyzer
    from ..resilience import spool_stream_chunk

    state.mkdir(parents=True, exist_ok=True)
    persist = str(state / "jobs.json")
    checkpoints = str(state / "checkpoints")
    analyzer = JumpAnalyzer(config)
    resolved = config_to_dict(analyzer.config)
    resolved_hash = config_hash(resolved)

    frames = [video.frames[index] for index in range(len(video))]
    half = max(1, len(frames) // 2)

    # Phase 1: the killed service's leftovers.
    store = JobStore(persist_path=persist)
    payload = store.create(
        JobStore.digest_of("ops-stream", str(seed), resolved_hash),
        seed=seed,
        config_hash=resolved_hash,
        mode="stream",
    )
    job_id = payload["id"]
    store.mark_running(job_id)
    spool_input(
        checkpoints,
        job_id,
        mode="stream",
        seed=seed,
        config=resolved,
        annotation=(
            None if annotation is None else annotation_to_dict(annotation)
        ),
    )
    for index, frame in enumerate(frames[:half]):
        spool_stream_chunk(checkpoints, job_id, index, [frame])
    store.record_frames(job_id, half)

    # Phase 2: restart, replay, reconnect, finish.
    pool = WorkerPool(2, thread_name_prefix="ops-stream")
    jobs_config = JobsConfig(
        persist_path=persist,
        checkpoint_dir=checkpoints,
        stream_idle_timeout_seconds=30.0,
    )
    manager = JobManager(jobs_config, pool)
    try:
        recovered = manager.recover(lambda _cfg: JumpAnalyzer(config))
        if recovered != [job_id]:
            raise ReproError(
                f"expected to recover [{job_id!r}], got {recovered!r}"
            )
        replayed = manager.payload(job_id)
        manager.push_frames(job_id, frames[half:])
        manager.eof(job_id)
        if not _wait_for(lambda: _terminal(manager, job_id)):
            raise ReproError("resumed stream never reached a terminal state")
        final = manager.payload(job_id, include_result=True)
        received = (final or {}).get("stream", {}).get("frames_received")
        survived = (
            final is not None
            and final["state"] == "succeeded"
            and final.get("resumed") is True
            and received == len(frames)
            and (final.get("result") or {}).get("report") is not None
        )
        detail = (
            f"replayed {half} spooled frames, client pushed "
            f"{len(frames) - half} more; report produced"
        )
        if not survived:
            detail = (
                f"state={final and final['state']}, received={received}, "
                f"resumed_payload={replayed and replayed.get('resumed')}"
            )
        return OpsFaultOutcome(
            name="restart_service_mid_stream",
            survived=survived,
            detail=detail,
            leaked_slots=_pool_leaks(pool),
        )
    finally:
        manager.close()
        pool.shutdown(wait=True)


def _scenario_wedge_past_watchdog(
    video, annotation, config, seed: int, state: Path
) -> OpsFaultOutcome:
    """A worker wedges; the watchdog fails the job and reclaims the slot.

    A single-slot pool is wedged by an analyzer that blocks and ignores
    cancellation.  Survival requires the watchdog to fail the job with
    a ``WatchdogTimeout``, a subsequent job to run on the reclaimed
    slot, and — once the zombie is released — the pool to return to its
    nominal size with zero outstanding reclaimed slots.
    """
    pool = WorkerPool(1, thread_name_prefix="ops-wedge")
    jobs_config = JobsConfig(
        job_deadline_seconds=0.2, watchdog_interval_seconds=0.05
    )
    # Stub analyzers (and a pass-through serializer): the scenario
    # exercises slot accounting, not the pipeline, and real analyses
    # would themselves overrun the deliberately tiny soft deadline.
    manager = JobManager(
        jobs_config, pool, serializer=lambda analysis: dict(analysis)
    )
    wedged = _WedgedAnalyzer()
    try:
        payload = manager.submit_analysis(wedged, video, seed=seed)
        job_id = payload["id"]
        if not wedged.entered.wait(10.0):
            raise ReproError("wedged analyzer never started")
        if not _wait_for(lambda: _terminal(manager, job_id), timeout=10.0):
            raise ReproError("watchdog never reaped the wedged job")
        final = manager.payload(job_id)
        error = (final or {}).get("error") or {}
        reaped = (
            final is not None
            and final["state"] == "failed"
            and error.get("type") == "WatchdogTimeout"
        )
        # The reclaimed slot must actually run new work while the
        # zombie still occupies the original one.
        follow_up = manager.submit_analysis(_QuickAnalyzer(), video, seed=seed)
        follow_up_done = _wait_for(
            lambda: _terminal(manager, follow_up["id"]), timeout=60.0
        )
        follow_up_ok = (
            follow_up_done
            and manager.payload(follow_up["id"])["state"] == "succeeded"
        )
        # Release the zombie; its exit must hand the extra slot back.
        wedged.release.set()
        slots_restored = _wait_for(
            lambda: _pool_leaks(pool) == 0, timeout=10.0
        )
        survived = bool(reaped and follow_up_ok and slots_restored)
        detail = (
            "watchdog reaped the wedged job; follow-up ran on the "
            "reclaimed slot; zombie exit restored the pool"
        )
        if not survived:
            detail = (
                f"reaped={reaped}, follow_up_ok={follow_up_ok}, "
                f"slots_restored={slots_restored}"
            )
        return OpsFaultOutcome(
            name="wedge_worker_past_watchdog",
            survived=survived,
            detail=detail,
            leaked_slots=_pool_leaks(pool),
        )
    finally:
        manager.close()
        pool.shutdown(wait=False, cancel_futures=True)


def _scenario_drain_under_load(
    video, annotation, config, seed: int, state: Path
) -> OpsFaultOutcome:
    """Drain with jobs in flight: they finish, new submissions get 503."""
    from ..client import RetryPolicy, ServiceClient, ServiceError
    from ..service import ServiceConfig, ServiceHandle

    state.mkdir(parents=True, exist_ok=True)
    service_config = ServiceConfig(
        drain_timeout_seconds=60.0,
        jobs=JobsConfig(persist_path=str(state / "jobs.json")),
    )
    handle = ServiceHandle(config=config, service_config=service_config)
    handle.start()
    try:
        from ..pipeline import JumpAnalyzer

        manager = handle.jobs
        analyzer = JumpAnalyzer(config)
        submitted = [
            manager.submit_analysis(
                analyzer,
                video,
                annotation=annotation,
                seed=seed + index,
            )["id"]
            for index in range(3)
        ]
        drained = handle.drain()
        all_done = all(
            (manager.payload(job_id) or {}).get("state") == "succeeded"
            for job_id in submitted
        )
        # New work must be refused while draining — single-shot client,
        # otherwise its own 503 backoff would mask the refusal.
        client = ServiceClient(
            handle.address, retry_policy=RetryPolicy(max_retries=0)
        )
        refused = False
        try:
            client.submit_stream(seed=seed)
        except ServiceError as exc:
            refused = exc.status == 503 and exc.error_type == "draining"
        health = client.health()
        survived = bool(
            drained
            and all_done
            and refused
            and health.get("status") == "shutting_down"
        )
        detail = (
            f"{len(submitted)} in-flight jobs finished; new submission "
            "refused with 503 draining"
        )
        if not survived:
            detail = (
                f"drained={drained}, all_done={all_done}, "
                f"refused={refused}, health={health.get('status')}"
            )
        return OpsFaultOutcome(
            name="drain_under_load",
            survived=survived,
            detail=detail,
            leaked_slots=_pool_leaks(handle._server.pool),
        )
    finally:
        handle.stop()


def _scenario_breaker_trip_recover(
    video, annotation, config, seed: int, state: Path
) -> OpsFaultOutcome:
    """Repeated failures trip the breaker; a cooldown probe closes it."""
    from ..pipeline import JumpAnalyzer

    pool = WorkerPool(2, thread_name_prefix="ops-breaker")
    jobs_config = JobsConfig(
        breaker_threshold=2, breaker_cooldown_seconds=0.2
    )
    manager = JobManager(jobs_config, pool)
    key = "ops-breaker-config"
    try:
        for index in range(2):
            payload = manager.submit_analysis(
                _FailingAnalyzer(), video, seed=seed + index, config_hash=key
            )
            if not _wait_for(lambda: _terminal(manager, payload["id"])):
                raise ReproError("failing job never finished")
        tripped = False
        try:
            manager.submit_analysis(
                _FailingAnalyzer(), video, seed=seed, config_hash=key
            )
        except CircuitOpen as exc:
            tripped = exc.retry_after > 0
        time.sleep(0.25)  # past the cooldown: next submission is the probe
        probe = manager.submit_analysis(
            JumpAnalyzer(config),
            video,
            annotation=annotation,
            seed=seed,
            config_hash=key,
        )
        probe_ok = (
            _wait_for(lambda: _terminal(manager, probe["id"]), timeout=60.0)
            and manager.payload(probe["id"])["state"] == "succeeded"
        )
        # A healthy probe must close the circuit again.
        reopened = manager.submit_analysis(
            JumpAnalyzer(config),
            video,
            annotation=annotation,
            seed=seed + 7,
            config_hash=key,
        )
        closed = _wait_for(
            lambda: _terminal(manager, reopened["id"]), timeout=60.0
        )
        snapshot = manager.breaker.snapshot()
        survived = bool(
            tripped and probe_ok and closed and snapshot["trips"] >= 1
        )
        detail = (
            f"breaker tripped after 2 failures, probe closed it "
            f"(trips={snapshot['trips']})"
        )
        if not survived:
            detail = (
                f"tripped={tripped}, probe_ok={probe_ok}, closed={closed}, "
                f"snapshot={snapshot}"
            )
        return OpsFaultOutcome(
            name="breaker_trip_recover",
            survived=survived,
            detail=detail,
            leaked_slots=_pool_leaks(pool),
        )
    finally:
        manager.close()
        pool.shutdown(wait=True)
