"""Fig. 2 — foreground extraction, stage by stage.

The paper shows the foreground mask after (a) background subtraction,
(b) noise removal, (c) small-spot removal and (d) hole fill.  This
bench scores each stage against the ground-truth moving mask
(person + shadow — the shadow is genuinely moving foreground until
Step 5 removes it) averaged over all frames.

Expected shape: F1 improves (or at worst holds) through the cleanup
stages, with precision rising sharply at the noise/spot stages.
"""

import numpy as np
import pytest

from repro.segmentation.evaluation import score_stages
from repro.segmentation.pipeline import SegmentationPipeline


@pytest.mark.benchmark(group="fig2-foreground")
def test_fig2_cleanup_stages(benchmark, jump, repro_table):
    pipeline = SegmentationPipeline()
    segmentations = pipeline.segment_video(jump.video)

    def stage_means():
        names = [
            "raw_foreground",
            "after_noise_removal",
            "after_spot_removal",
            "after_hole_fill",
        ]
        sums = {name: np.zeros(3) for name in names}
        for index, seg in enumerate(segmentations):
            scores = score_stages(seg, jump, index)
            for name in names:
                counts = getattr(scores, name)
                sums[name] += (counts.precision, counts.recall, counts.f1)
        return {name: sums[name] / len(segmentations) for name in names}

    means = stage_means()

    # Benchmark one full segment() call (Steps 2-5 on one frame).
    benchmark.pedantic(
        pipeline.segment, args=(jump.video[10],), rounds=5, iterations=1
    )

    labels = {
        "raw_foreground": "(a) after subtraction",
        "after_noise_removal": "(b) after noise removal",
        "after_spot_removal": "(c) after spot removal",
        "after_hole_fill": "(d) after hole fill",
    }
    rows = [
        [labels[name], p, r, f]
        for name, (p, r, f) in means.items()
    ]
    repro_table(
        "Fig 2 - foreground extraction stages",
        ["stage", "precision", "recall", "F1"],
        rows,
        note="scored against the true moving mask (person+shadow), mean over 20 frames",
    )

    f1 = {name: v[2] for name, v in means.items()}
    assert f1["after_spot_removal"] >= f1["raw_foreground"], (
        "noise+spot removal must improve F1 over raw subtraction"
    )
    # Hole fill may close genuine thin slits (arm-to-body gaps), costing
    # a whisker of precision for the recall it buys; allow that.
    assert f1["after_hole_fill"] >= f1["after_spot_removal"] - 0.005
    assert f1["after_hole_fill"] > 0.85, "cleaned foreground should be accurate"
    precision = {name: v[0] for name, v in means.items()}
    assert precision["after_spot_removal"] >= precision["raw_foreground"]
