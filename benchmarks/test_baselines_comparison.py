"""Section 3 claim — temporal seeding vs the single-frame GA of [5].

"With the GA-based search, a proper stick model with a high accuracy
can be found in 200 generations [Shoji et al.].  However, no temporal
information is utilized.  In this work, a modified version is
developed for video sequences" — and Fig. 7 then shows the best model
appearing at generation 2.

This bench fits the *same* silhouette (a mid-jump frame) with:

* the temporal GA seeded from the previous frame's pose,
* the single-frame GA with random initialisation (the [5] baseline),
* hill climbing from the previous pose,
* Nelder–Mead from the previous pose,
* pure random search in the temporal window.

Expected shape: the temporal GA reaches its final quality within a few
generations / a few hundred evaluations, one to two orders of
magnitude faster than the randomly initialised single-frame GA, and
with a better final fitness than the local-search baselines.
"""

import numpy as np
import pytest

from repro.ga.baselines import HillClimbConfig, hill_climb, nelder_mead, random_search
from repro.ga.single_frame import SingleFrameConfig, estimate_single_frame
from repro.ga.temporal import TemporalPoseTracker, TrackerConfig
from repro.ga.population import temporal_population
from repro.model.fitness import FitnessConfig, SilhouetteFitness
from repro.model.pose import StickPose, mean_joint_error
from repro.model.sticks import AngleWindows


FRAME = 12  # a flight frame with a distinctive pose


def _quality_threshold(fitness_value: float) -> float:
    return fitness_value * 1.10


@pytest.mark.benchmark(group="baselines")
def test_temporal_vs_single_frame_and_baselines(benchmark, jump, repro_table):
    mask = jump.person_masks[FRAME]
    prev_true = jump.motion.poses[FRAME - 1]
    true_pose = jump.motion.poses[FRAME]
    dims = jump.dims
    fitness = SilhouetteFitness(mask, dims, FitnessConfig(max_points=1000))

    rows = []

    # --- temporal GA (the paper's method) -----------------------------
    tracker = TemporalPoseTracker(
        dims,
        TrackerConfig(
            containment_margin=1,
            min_inside_fraction=0.95,
            containment_samples=7,
            temporal_weight=0.0,  # pure Eq. 3 for a fair fitness comparison
        ),
    )

    def run_temporal():
        return tracker.estimate_frame(
            mask, prev_true, np.random.default_rng(0)
        )

    pose_t, search_t = benchmark.pedantic(run_temporal, rounds=1, iterations=1)
    reach_t = search_t.generations_to_reach(_quality_threshold(search_t.best_fitness))
    rows.append(
        [
            "temporal GA (paper)",
            search_t.best_fitness,
            reach_t,
            search_t.total_evaluations,
            mean_joint_error(pose_t, true_pose, dims),
        ]
    )

    # --- single-frame GA, random init (Shoji [5]) ---------------------
    estimate_sf = estimate_single_frame(
        mask,
        dims,
        SingleFrameConfig(fitness=FitnessConfig(max_points=1000)),
        rng=np.random.default_rng(1),
    )
    search_sf = estimate_sf.search
    reach_sf = search_sf.generations_to_reach(
        _quality_threshold(search_sf.best_fitness)
    )
    rows.append(
        [
            "single-frame GA [5], 200 gens",
            estimate_sf.fitness,
            reach_sf,
            search_sf.total_evaluations,
            mean_joint_error(estimate_sf.pose, true_pose, dims),
        ]
    )

    # --- hill climbing from the previous pose -------------------------
    result_hc = hill_climb(
        prev_true.to_genes(),
        fitness.evaluate,
        HillClimbConfig(iterations=1200),
        rng=np.random.default_rng(2),
    )
    rows.append(
        [
            "hill climbing (prev pose)",
            result_hc.best_fitness,
            "-",
            result_hc.total_evaluations,
            mean_joint_error(
                StickPose.from_genes(result_hc.best_genes), true_pose, dims
            ),
        ]
    )

    # --- Nelder-Mead from the previous pose ---------------------------
    result_nm = nelder_mead(prev_true.to_genes(), fitness.evaluate, 1200)
    rows.append(
        [
            "Nelder-Mead (prev pose)",
            result_nm.best_fitness,
            "-",
            result_nm.total_evaluations,
            mean_joint_error(
                StickPose.from_genes(result_nm.best_genes), true_pose, dims
            ),
        ]
    )

    # --- random search in the temporal window -------------------------
    window_rng = np.random.default_rng(3)

    def sampler(n):
        return temporal_population(
            prev_true, mask, AngleWindows(), n, rng=window_rng,
            include_previous=False,
        )

    result_rs = random_search(sampler, fitness.evaluate, budget=1200)
    rows.append(
        [
            "random search (window)",
            result_rs.best_fitness,
            "-",
            result_rs.total_evaluations,
            mean_joint_error(
                StickPose.from_genes(result_rs.best_genes), true_pose, dims
            ),
        ]
    )

    repro_table(
        "Sec 3 - temporal GA vs single-frame GA and baselines",
        ["method", "final F_S", "gens to 110% of final", "evaluations", "joint err px"],
        rows,
        note=f"all methods fit frame {FRAME}'s silhouette; paper: [5] needs ~200 "
        "generations, temporal seeding ~2",
    )

    # the temporal GA converges orders of magnitude faster than [5]
    assert reach_t is not None and reach_t <= 10
    assert reach_sf is None or reach_sf >= 5 * max(reach_t, 1), (
        "random init must need far more generations than temporal seeding"
    )
    # and its pose is at least as accurate as every baseline
    joint_t = rows[0][4]
    for row in rows[1:]:
        assert joint_t <= row[4] + 2.0
