"""Fig. 7 — GA-estimated stick models with temporal seeding.

The paper's key observation: seeding the GA population from the
previous frame makes the best model appear almost immediately — "the
shown best estimated model was generated at the second generation" for
both example frames.  This bench tracks the full sequence and reports,
per frame, the generation at which the best model appeared, plus
pose accuracy against ground truth (which the paper could only eyeball).

Expected shape: generation-of-best is a small single-digit number for
most frames (paper: 2), and the estimated models stay within a few
pixels of the truth.
"""

import numpy as np
import pytest

from repro.ga.temporal import TemporalPoseTracker, TrackerConfig
from repro.model.annotation import simulate_human_annotation
from repro.model.pose import mean_joint_error, pose_angle_errors
from repro.segmentation.pipeline import SegmentationPipeline


@pytest.mark.benchmark(group="fig7-tracking")
def test_fig7_temporal_tracking(benchmark, jump, repro_table):
    pipeline = SegmentationPipeline()
    silhouettes = pipeline.silhouettes(jump.video)
    annotation = simulate_human_annotation(
        jump.motion.poses[0],
        jump.dims,
        mask=silhouettes[0],
        rng=np.random.default_rng(0),
    )
    tracker = TemporalPoseTracker(
        annotation.dims,
        TrackerConfig(
            containment_margin=1, min_inside_fraction=0.95, containment_samples=7
        ),
    )

    def run():
        return tracker.track(
            silhouettes, annotation.pose, rng=np.random.default_rng(1)
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    gen_of_best = [record.search.generation_of_best for record in result.records]
    # The paper-comparable convergence metric: the generation at which
    # the search is already within 5% / 10% of its final fitness (the
    # GA keeps polishing by fractions of a percent long after the model
    # is visually final, which is what "generated at the second
    # generation" refers to).
    gens_within_5 = [
        record.search.generations_to_reach(record.search.best_fitness * 1.05)
        for record in result.records
    ]
    gens_within_10 = [
        record.search.generations_to_reach(record.search.best_fitness * 1.10)
        for record in result.records
    ]
    joint_errors = [
        mean_joint_error(result.poses[k], jump.motion.poses[k], jump.dims)
        for k in range(1, jump.num_frames)
    ]
    angle_errors = [
        float(pose_angle_errors(result.poses[k], jump.motion.poses[k]).mean())
        for k in range(1, jump.num_frames)
    ]

    rows = [
        ["median generation within 10% of final fitness", float(np.median(gens_within_10))],
        ["median generation within 5% of final fitness", float(np.median(gens_within_5))],
        [
            "frames within 10% of final by generation 2",
            f"{sum(g <= 2 for g in gens_within_10)}/19",
        ],
        ["median generation of last micro-improvement", float(np.median(gen_of_best))],
        ["mean fitness F_S over frames", result.mean_fitness],
        ["mean joint error (px)", float(np.mean(joint_errors))],
        ["max joint error (px)", float(np.max(joint_errors))],
        ["mean stick-angle error (deg)", float(np.mean(angle_errors))],
    ]
    repro_table(
        "Fig 7 - temporal GA tracking",
        ["quantity", "value"],
        rows,
        note="paper: best model for frames 2 and 3 appeared at generation 2",
    )

    assert float(np.median(gens_within_10)) <= 3.0, (
        "temporal seeding must be near-converged within a couple of generations"
    )
    assert float(np.median(gens_within_5)) <= 8.0
    assert float(np.mean(joint_errors)) < 5.0
    assert result.mean_fitness < 0.5
