"""Robustness sweeps — beyond the paper's single-video evaluation.

The paper's imagined deployment ("upload a video sequence ... with a
proper setting of the video capturing") raises the questions its
evaluation never answers: how much sensor noise, how small a jumper,
and how low a frame rate can the pipeline tolerate?  Ground truth makes
the answers measurable.

Expected shapes: graceful degradation with noise until the subtraction
threshold drowns (σ ≈ threshold/2); tracking degrades as the jumper
shrinks (limbs approach 1–2 px); fewer frames mean larger per-frame
motion and harder tracking.
"""

import pytest

from repro.evaluation import evaluate_tracking
from repro.ga.engine import GAConfig
from repro.ga.temporal import TrackerConfig
from repro.model.fitness import FitnessConfig
from repro.pipeline import AnalyzerConfig
from repro.segmentation.evaluation import evaluate_sequence
from repro.segmentation.pipeline import SegmentationPipeline
from repro.video.synthesis import (
    JumpParameters,
    NoiseConfig,
    SyntheticJumpConfig,
    synthesize_jump,
)


def _fast_config() -> AnalyzerConfig:
    return AnalyzerConfig(
        tracker=TrackerConfig(
            ga=GAConfig(population_size=30, max_generations=10, patience=5),
            fitness=FitnessConfig(max_points=600),
            containment_margin=1,
            min_inside_fraction=0.95,
            containment_samples=7,
        )
    )


@pytest.mark.benchmark(group="robustness")
def test_noise_robustness(benchmark, repro_table):
    rows = []
    for sigma in (0.005, 0.012, 0.030, 0.050):
        noise = NoiseConfig(pixel_sigma=sigma)
        jump = synthesize_jump(SyntheticJumpConfig(seed=0, noise=noise))
        pipeline = SegmentationPipeline()
        segmentations = pipeline.segment_video(jump.video)
        evaluation = evaluate_sequence(segmentations, jump, pipeline.background)
        rows.append(
            [
                f"pixel sigma {sigma}",
                evaluation.mean_person_iou,
                float(min(evaluation.person_iou)),
                evaluation.background_rmse,
            ]
        )

    def run_default():
        jump = synthesize_jump(SyntheticJumpConfig(seed=0))
        return SegmentationPipeline().silhouettes(jump.video)

    benchmark.pedantic(run_default, rounds=1, iterations=1)

    repro_table(
        "Robustness - sensor noise vs segmentation",
        ["noise level", "mean IoU", "min IoU", "background rmse"],
        rows,
        note="subtraction threshold is 0.09; noise above ~half of it hurts",
    )
    assert rows[0][1] > 0.97
    assert rows[0][1] >= rows[-1][1], "more noise must not improve IoU"


def _medium_config() -> AnalyzerConfig:
    # Larger bodies cover more silhouette pixels and need a larger
    # search effort: the fast config that suffices at stature 60 loses
    # limbs at stature 90 (a finding in its own right).
    return AnalyzerConfig(
        tracker=TrackerConfig(
            ga=GAConfig(population_size=40, max_generations=14, patience=6),
            fitness=FitnessConfig(max_points=1200),
            containment_margin=1,
            min_inside_fraction=0.95,
            containment_samples=7,
        )
    )


@pytest.mark.benchmark(group="robustness")
def test_body_scale_robustness(benchmark, repro_table):
    rows = []
    for stature in (48.0, 60.0, 72.0, 90.0):
        jump = synthesize_jump(SyntheticJumpConfig(seed=0, stature=stature))
        pipeline = SegmentationPipeline()
        segmentations = pipeline.segment_video(jump.video)
        evaluation = evaluate_sequence(segmentations, jump, pipeline.background)
        tracking = evaluate_tracking([jump], config=_medium_config())
        rows.append(
            [
                f"stature {stature:.0f}px",
                evaluation.mean_person_iou,
                tracking.mean_joint_error,
                tracking.mean_joint_error / stature * 100.0,
            ]
        )

    def run_small():
        jump = synthesize_jump(SyntheticJumpConfig(seed=0, stature=48.0))
        return evaluate_tracking([jump], config=_medium_config())

    benchmark.pedantic(run_small, rounds=1, iterations=1)

    repro_table(
        "Robustness - jumper size vs accuracy",
        ["body size", "silhouette IoU", "joint err px", "joint err % of stature"],
        rows,
        note="small figures lose thin limbs; large figures need more GA budget",
    )
    # relative joint error stays bounded across a ~2x size range
    assert all(row[3] < 14.0 for row in rows)


@pytest.mark.benchmark(group="robustness")
def test_motion_blur_robustness(benchmark, repro_table):
    rows = []
    for blur in (1, 3, 5):
        jump = synthesize_jump(
            SyntheticJumpConfig(seed=0, motion_blur_samples=blur)
        )
        pipeline = SegmentationPipeline()
        segmentations = pipeline.segment_video(jump.video)
        evaluation = evaluate_sequence(segmentations, jump, pipeline.background)
        rows.append(
            [
                "sharp exposure" if blur == 1 else f"{blur} sub-exposures",
                evaluation.mean_person_iou,
                float(min(evaluation.person_iou)),
            ]
        )

    def run_blurred():
        jump = synthesize_jump(SyntheticJumpConfig(seed=0, motion_blur_samples=3))
        return SegmentationPipeline().silhouettes(jump.video)

    benchmark.pedantic(run_blurred, rounds=1, iterations=1)

    repro_table(
        "Robustness - motion blur vs segmentation",
        ["exposure", "mean IoU", "min IoU"],
        rows,
        note="ground truth stays sharp; blur smears the fast-moving limbs",
    )
    assert rows[0][1] > rows[-1][1], "blur must cost accuracy"
    assert rows[-1][1] > 0.7, "but the pipeline must survive it"


@pytest.mark.benchmark(group="robustness")
def test_frame_rate_robustness(benchmark, repro_table):
    rows = []
    for frames in (12, 20, 32):
        jump = synthesize_jump(
            SyntheticJumpConfig(seed=0, params=JumpParameters(num_frames=frames))
        )
        tracking = evaluate_tracking([jump], config=_fast_config())
        rows.append(
            [
                f"{frames} frames/jump",
                tracking.mean_joint_error,
                tracking.mean_angle_error,
                tracking.per_stick_angle_error[2],  # upper arm
            ]
        )

    def run_short():
        jump = synthesize_jump(
            SyntheticJumpConfig(seed=0, params=JumpParameters(num_frames=12))
        )
        return evaluate_tracking([jump], config=_fast_config())

    benchmark.pedantic(run_short, rounds=1, iterations=1)

    repro_table(
        "Robustness - frames per jump vs tracking",
        ["sampling", "joint err px", "angle err deg", "arm angle err deg"],
        rows,
        note="fewer frames = larger per-frame motion = harder temporal seeding",
    )
    assert rows[-1][1] <= rows[0][1] + 2.0, (
        "denser sampling must not be much worse than sparse"
    )
