"""Table 2 — the scoring rules, margins on ground-truth motion.

For every rule R1–R7: the observed aggregate angle on a conforming
jump, on the jump violating the corresponding standard, and the rule's
threshold.  Evaluated on ground-truth poses, this isolates the rule
formulation itself from tracking noise.

Expected shape: every rule passes with a clear margin on the clean
jump and fails with a clear margin on its violating jump.
"""

import pytest

from repro.scoring.report import JumpScorer
from repro.scoring.rules import RULES
from repro.scoring.standards import Standard
from repro.video.synthesis import SyntheticJumpConfig, synthesize_jump


@pytest.mark.benchmark(group="table2-rules")
def test_table2_rule_margins(benchmark, repro_table):
    scorer = JumpScorer()
    clean = synthesize_jump(SyntheticJumpConfig(seed=0))

    def score_clean():
        return scorer.score(
            clean.motion.poses, takeoff_frame=clean.motion.takeoff_frame
        )

    clean_report = benchmark.pedantic(score_clean, rounds=20, iterations=1)

    flawed_reports = {}
    for index, standard in enumerate(Standard):
        flawed = synthesize_jump(
            SyntheticJumpConfig(seed=70 + index, violated=(standard,))
        )
        flawed_reports[standard] = scorer.score(
            flawed.motion.poses, takeoff_frame=flawed.motion.takeoff_frame
        )

    rows = []
    for rule_index, rule in enumerate(RULES):
        clean_result = clean_report.results[rule_index]
        flawed_result = flawed_reports[rule.standard].results[rule_index]
        comparator = ">" if rule.greater else "<"
        rows.append(
            [
                rule.rule_id,
                f"{rule.expression}",
                f"{clean_result.value:.1f} ({'pass' if clean_result.passed else 'FAIL'})",
                f"{flawed_result.value:.1f} ({'fail' if not flawed_result.passed else 'PASS?'})",
                f"{comparator} {rule.threshold:.0f}",
            ]
        )

    repro_table(
        "Table 2 - rule margins on ground truth",
        ["rule", "condition", "clean jump", "violating jump", "threshold"],
        rows,
        note="rules evaluated on ground-truth poses; windows split at takeoff",
    )

    assert all(result.passed for result in clean_report.results)
    for standard, report in flawed_reports.items():
        failed_ids = [r.rule.rule_id for r in report.failed]
        assert failed_ids == [f"R{standard.name[1]}"], (
            f"{standard.name} must fail exactly its rule, got {failed_ids}"
        )
    # margins are comfortable (> 8 degrees) on both sides
    for rule_index, rule in enumerate(RULES):
        assert clean_report.results[rule_index].margin > 8.0
        assert flawed_reports[rule.standard].results[rule_index].margin < -8.0
