"""Ablation — the four experimental parameters of Eq. 1.

"The parameters α, β, τ_S and τ_H are determined via experiments."
This bench runs those experiments: each parameter is swept around the
library default and the shadow detection / person discrimination /
final-silhouette IoU trade-off is reported.

Expected shape: detection collapses when β drops below the true shadow
value gain (0.55); discrimination degrades when τ_S or τ_H grow so
large that person pixels start matching; the defaults sit on the
plateau that is good at both.
"""

import dataclasses

import pytest

from repro.segmentation.evaluation import evaluate_sequence
from repro.segmentation.pipeline import SegmentationConfig, SegmentationPipeline
from repro.segmentation.shadow import ShadowMaskConfig


def _evaluate(jump, shadow_config: ShadowMaskConfig):
    pipeline = SegmentationPipeline(SegmentationConfig(shadow=shadow_config))
    segmentations = pipeline.segment_video(jump.video)
    evaluation = evaluate_sequence(segmentations, jump, pipeline.background)
    return (
        evaluation.mean_shadow_detection,
        evaluation.mean_shadow_discrimination,
        evaluation.mean_person_iou,
    )


@pytest.mark.benchmark(group="ablation-shadow")
def test_ablation_shadow_parameters(benchmark, jump, repro_table):
    default = ShadowMaskConfig()

    benchmark.pedantic(_evaluate, args=(jump, default), rounds=1, iterations=1)

    sweeps = {
        "alpha": [0.2, 0.4, 0.6],
        "beta": [0.5, 0.7, 0.9, 0.98],
        "tau_s": [0.04, 0.12, 0.5],
        "tau_h": [10.0, 40.0, 120.0],
    }
    rows = []
    results = {}
    for parameter, values in sweeps.items():
        for value in values:
            config = dataclasses.replace(default, **{parameter: value})
            detection, discrimination, person_iou = _evaluate(jump, config)
            marker = " (default)" if getattr(default, parameter) == value else ""
            results[(parameter, value)] = (detection, discrimination, person_iou)
            rows.append(
                [
                    f"{parameter}={value}{marker}",
                    detection,
                    discrimination,
                    person_iou,
                ]
            )

    repro_table(
        "Ablation - Eq.1 shadow parameters",
        ["setting", "detection", "discrimination", "person IoU"],
        rows,
        note="paper: parameters 'determined via experiments' - these are the experiments",
    )

    # beta below the true shadow gain (0.55) kills detection
    assert results[("beta", 0.5)][0] < results[("beta", 0.9)][0] - 0.3
    # defaults are near the best person IoU seen in the sweep
    best_iou = max(v[2] for v in results.values())
    assert results[("beta", 0.9)][2] >= best_iou - 0.02
