"""Ablation — the GA design choices the paper fixes without study.

The paper sets crossover rate 0.2, mutation 0.01, elitism, and the
five kinematic gene groups.  This bench re-tracks a fixed 8-frame
window of the reference jump under variations of each choice and
reports final fitness and joint error.

Expected shape: the paper's settings are at or near the best of each
sweep; removing grouping (singleton groups) or zeroing crossover hurts.
"""

import numpy as np
import pytest

from repro.ga.engine import GAConfig
from repro.ga.operators import OperatorConfig, singleton_groups
from repro.ga.temporal import TemporalPoseTracker, TrackerConfig
from repro.model.annotation import simulate_human_annotation
from repro.model.fitness import FitnessConfig
from repro.model.pose import mean_joint_error

FRAMES = slice(6, 14)  # crouch through mid-flight: the hard part


def _track_once(jump, operators: OperatorConfig, seed: int):
    silhouettes = list(jump.person_masks)[FRAMES]
    truth = list(jump.motion.poses)[FRAMES]
    annotation = simulate_human_annotation(
        truth[0], jump.dims, mask=silhouettes[0], rng=np.random.default_rng(seed)
    )
    tracker = TemporalPoseTracker(
        annotation.dims,
        TrackerConfig(
            ga=GAConfig(
                population_size=50,
                max_generations=20,
                patience=8,
                operators=operators,
            ),
            fitness=FitnessConfig(max_points=800),
            containment_margin=1,
            min_inside_fraction=0.95,
            containment_samples=7,
        ),
    )
    result = tracker.track(silhouettes, annotation.pose, rng=np.random.default_rng(seed + 1))
    joint = float(
        np.mean(
            [
                mean_joint_error(result.poses[k], truth[k], jump.dims)
                for k in range(1, len(truth))
            ]
        )
    )
    return result.mean_fitness, joint


def _track(jump, operators: OperatorConfig, seed: int = 0):
    """Average two runs: a single short tracking slice is noisy."""
    results = [_track_once(jump, operators, seed + offset) for offset in (0, 5)]
    return (
        float(np.mean([r[0] for r in results])),
        float(np.mean([r[1] for r in results])),
    )


@pytest.mark.benchmark(group="ablation-ga")
def test_ablation_ga_operators(benchmark, jump, repro_table):
    variants = {
        "paper: xover 0.2, mut 0.01, groups": OperatorConfig(),
        "no crossover": OperatorConfig(crossover_rate=0.0),
        "heavy crossover 0.8": OperatorConfig(crossover_rate=0.8),
        "no mutation": OperatorConfig(mutation_rate=0.0),
        "heavy mutation 0.2": OperatorConfig(mutation_rate=0.2),
        "singleton gene groups": OperatorConfig(gene_groups=singleton_groups()),
    }

    def run_paper():
        return _track(jump, OperatorConfig())

    benchmark.pedantic(run_paper, rounds=1, iterations=1)

    rows = []
    scores = {}
    for name, operators in variants.items():
        fitness, joint = _track(jump, operators)
        scores[name] = (fitness, joint)
        rows.append([name, fitness, joint])

    repro_table(
        "Ablation - GA operators (frames 6-13)",
        ["variant", "mean F_S", "mean joint err px"],
        rows,
        note="paper fixes crossover 0.2 / mutation 0.01 / kinematic gene groups",
    )

    paper_fitness, paper_joint = scores["paper: xover 0.2, mut 0.01, groups"]
    # The paper's configuration must be competitive: no variant beats it
    # beyond the run-to-run noise of this short slice (~0.1 in F_S).
    for name, (fitness, joint) in scores.items():
        assert paper_fitness <= fitness + 0.15, (name, fitness, paper_fitness)
    assert paper_joint < 8.0


@pytest.mark.benchmark(group="ablation-ga")
def test_ablation_selection_mode(benchmark, jump, repro_table):
    """Linear-ranking (the paper's 'higher probability to be picked')
    vs tournament selection."""
    rows = []
    for name, selection, extra in (
        ("ranking, pressure 1.7 (default)", "ranking", {}),
        ("ranking, pressure 1.2", "ranking", {"selection_pressure": 1.2}),
        ("ranking, pressure 2.0", "ranking", {"selection_pressure": 2.0}),
        ("tournament of 3", "tournament", {"tournament_size": 3}),
        ("tournament of 6", "tournament", {"tournament_size": 6}),
    ):
        silhouettes = list(jump.person_masks)[FRAMES]
        truth = list(jump.motion.poses)[FRAMES]
        annotation = simulate_human_annotation(
            truth[0], jump.dims, mask=silhouettes[0], rng=np.random.default_rng(0)
        )
        tracker = TemporalPoseTracker(
            annotation.dims,
            TrackerConfig(
                ga=GAConfig(
                    population_size=50,
                    max_generations=20,
                    patience=8,
                    selection=selection,
                    **extra,
                ),
                fitness=FitnessConfig(max_points=800),
                containment_margin=1,
                min_inside_fraction=0.95,
                containment_samples=7,
            ),
        )
        fitnesses = []
        joints = []
        for run_seed in (1, 2):  # average two runs: single runs are noisy
            result = tracker.track(
                silhouettes, annotation.pose, rng=np.random.default_rng(run_seed)
            )
            fitnesses.append(result.mean_fitness)
            joints.append(
                float(
                    np.mean(
                        [
                            mean_joint_error(result.poses[k], truth[k], jump.dims)
                            for k in range(1, len(truth))
                        ]
                    )
                )
            )
        rows.append([name, float(np.mean(fitnesses)), float(np.mean(joints))])

    benchmark.pedantic(
        _track, args=(jump, OperatorConfig()), rounds=1, iterations=1
    )

    repro_table(
        "Ablation - selection scheme (frames 6-13)",
        ["variant", "mean F_S", "mean joint err px"],
        rows,
        note="the paper only specifies elitism + fitness-biased parent choice",
    )
    fitness_values = [row[1] for row in rows]
    # Run-to-run stochastic variance of a short tracking slice is
    # ~0.05-0.1 in F_S; the selection scheme must not blow past that.
    assert max(fitness_values) - min(fitness_values) < 0.2, (
        "selection scheme should not be a dominant factor"
    )


@pytest.mark.benchmark(group="ablation-ga")
def test_ablation_population_size(benchmark, jump, repro_table):
    rows = []
    for size in (15, 30, 60):
        silhouettes = list(jump.person_masks)[FRAMES]
        truth = list(jump.motion.poses)[FRAMES]
        annotation = simulate_human_annotation(
            truth[0], jump.dims, mask=silhouettes[0], rng=np.random.default_rng(0)
        )
        tracker = TemporalPoseTracker(
            annotation.dims,
            TrackerConfig(
                ga=GAConfig(population_size=size, max_generations=20, patience=8),
                fitness=FitnessConfig(max_points=800),
                containment_margin=1,
                min_inside_fraction=0.95,
                containment_samples=7,
            ),
        )
        result = tracker.track(
            silhouettes, annotation.pose, rng=np.random.default_rng(1)
        )
        joint = float(
            np.mean(
                [
                    mean_joint_error(result.poses[k], truth[k], jump.dims)
                    for k in range(1, len(truth))
                ]
            )
        )
        rows.append([f"population {size}", result.mean_fitness, joint])

    def run_small():
        silhouettes = list(jump.person_masks)[FRAMES]
        annotation = simulate_human_annotation(
            list(jump.motion.poses)[FRAMES][0],
            jump.dims,
            mask=silhouettes[0],
            rng=np.random.default_rng(0),
        )
        tracker = TemporalPoseTracker(
            annotation.dims,
            TrackerConfig(
                ga=GAConfig(population_size=15, max_generations=20, patience=8),
                fitness=FitnessConfig(max_points=800),
            ),
        )
        return tracker.track(
            silhouettes, annotation.pose, rng=np.random.default_rng(1)
        )

    benchmark.pedantic(run_small, rounds=1, iterations=1)

    repro_table(
        "Ablation - population size (frames 6-13)",
        ["variant", "mean F_S", "mean joint err px"],
        rows,
        note="larger populations buy accuracy at linear cost",
    )
    assert rows[-1][1] <= rows[0][1] + 0.03  # 60 no worse than 15
