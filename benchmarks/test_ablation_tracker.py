"""Ablation — the tracker extensions beyond the paper.

The library adds four mechanisms on top of the paper's temporal GA:
constant-velocity extrapolation of the search window, gene-group
reseeding immigrants, a post-GA limb-rescue sweep, and a local polish.
This bench tracks the full reference jump with each mechanism removed
(one at a time) and with all of them off (the paper-faithful tracker),
reporting pose accuracy.

Expected shape: the full configuration is the most accurate; the
paper-faithful variant loses the fast-swinging arm (large angle error)
exactly as analysed in DESIGN.md.
"""

import numpy as np
import pytest

from repro.ga.temporal import TemporalPoseTracker, TrackerConfig
from repro.model.annotation import simulate_human_annotation
from repro.model.fitness import FitnessConfig
from repro.model.pose import mean_joint_error, pose_angle_errors
from repro.model.sticks import UPPER_ARM


def _config(**overrides) -> TrackerConfig:
    base = dict(
        containment_margin=1,
        min_inside_fraction=0.95,
        containment_samples=7,
        fitness=FitnessConfig(max_points=1000),
    )
    base.update(overrides)
    return TrackerConfig(**base)


VARIANTS = {
    "full (all extensions)": {},
    "no extrapolation": {"extrapolate": False},
    "no reseeding": {"reseed_fraction": 0.0},
    "no limb rescue": {"limb_rescue": False},
    "no polish": {"polish": False},
    "no temporal prior": {"temporal_weight": 0.0},
    "paper-faithful (all off)": {
        "extrapolate": False,
        "reseed_fraction": 0.0,
        "limb_rescue": False,
        "polish": False,
        "temporal_weight": 0.0,
    },
}


@pytest.mark.benchmark(group="ablation-tracker")
def test_ablation_tracker_extensions(benchmark, jump, repro_table):
    silhouettes = list(jump.person_masks)
    annotation = simulate_human_annotation(
        jump.motion.poses[0],
        jump.dims,
        mask=silhouettes[0],
        rng=np.random.default_rng(0),
    )

    def track(config: TrackerConfig):
        tracker = TemporalPoseTracker(annotation.dims, config)
        return tracker.track(
            silhouettes, annotation.pose, rng=np.random.default_rng(1)
        )

    benchmark.pedantic(track, args=(_config(),), rounds=1, iterations=1)

    rows = []
    metrics = {}
    for name, overrides in VARIANTS.items():
        result = track(_config(**overrides))
        joint = float(
            np.mean(
                [
                    mean_joint_error(result.poses[k], jump.motion.poses[k], jump.dims)
                    for k in range(1, jump.num_frames)
                ]
            )
        )
        per_stick = np.mean(
            [
                pose_angle_errors(result.poses[k], jump.motion.poses[k])
                for k in range(1, jump.num_frames)
            ],
            axis=0,
        )
        metrics[name] = (joint, float(per_stick.mean()), float(per_stick[UPPER_ARM]))
        rows.append([name, joint, float(per_stick.mean()), float(per_stick[UPPER_ARM])])

    repro_table(
        "Ablation - tracker extensions (full jump)",
        ["variant", "joint err px", "angle err deg", "arm angle err deg"],
        rows,
        note="extensions recover the fast-swinging arm the paper's seeding loses",
    )

    full_joint = metrics["full (all extensions)"][0]
    paper_joint = metrics["paper-faithful (all off)"][0]
    assert full_joint < 5.0
    assert full_joint <= paper_joint + 0.5, (
        "the full tracker must not be worse than the paper-faithful one"
    )
    # the arm is where the extensions matter
    full_arm = metrics["full (all extensions)"][2]
    paper_arm = metrics["paper-faithful (all off)"][2]
    assert full_arm < paper_arm, "extensions must improve arm tracking"
