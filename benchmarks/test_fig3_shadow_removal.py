"""Fig. 3 — HSV shadow removal.

The paper shows the silhouette after Step 5: "comparing Figure 3(b)
with Figure 1(a), we can see that the result for human segmentation is
quite successful."  This bench quantifies the step: conditional shadow
detection rate, person discrimination rate, end-to-end shadow leakage
into the final silhouette, and final person IoU — with the shadow step
enabled vs disabled, across shadow strengths.

Expected shape: with the HSV step on, nearly all foreground shadow
pixels are removed while nearly all person pixels survive; disabling
the step leaves the silhouette contaminated (lower IoU).
"""

import pytest

from repro.segmentation.evaluation import evaluate_sequence
from repro.segmentation.pipeline import SegmentationConfig, SegmentationPipeline
from repro.video.synthesis import ShadowConfig, SyntheticJumpConfig, synthesize_jump


@pytest.mark.benchmark(group="fig3-shadow")
def test_fig3_shadow_removal(benchmark, jump, repro_table):
    rows = []

    # With and without the shadow step on the reference jump.
    for label, config in (
        ("Eq.1 shadow removal ON", SegmentationConfig()),
        ("shadow removal OFF", SegmentationConfig(remove_shadows=False)),
    ):
        pipeline = SegmentationPipeline(config)
        segmentations = pipeline.segment_video(jump.video)
        evaluation = evaluate_sequence(segmentations, jump, pipeline.background)
        rows.append(
            [
                label,
                "default",
                evaluation.mean_shadow_detection,
                evaluation.mean_shadow_discrimination,
                evaluation.mean_shadow_leakage,
                evaluation.mean_person_iou,
            ]
        )

    # Shadow-strength sweep (darker and lighter shadows than default).
    for gain in (0.35, 0.55, 0.75):
        shadow = ShadowConfig(value_gain=gain)
        strong = synthesize_jump(SyntheticJumpConfig(seed=0, shadow=shadow))
        pipeline = SegmentationPipeline()
        segmentations = pipeline.segment_video(strong.video)
        evaluation = evaluate_sequence(segmentations, strong, pipeline.background)
        rows.append(
            [
                "Eq.1 shadow removal ON",
                f"value gain {gain}",
                evaluation.mean_shadow_detection,
                evaluation.mean_shadow_discrimination,
                evaluation.mean_shadow_leakage,
                evaluation.mean_person_iou,
            ]
        )

    from repro.segmentation.shadow import shadow_mask

    pipeline = SegmentationPipeline()
    pipeline.fit(jump.video)
    foreground = pipeline.segment(jump.video[10]).after_hole_fill
    benchmark.pedantic(
        shadow_mask,
        args=(jump.video[10], pipeline.background, foreground),
        rounds=5,
        iterations=1,
    )

    repro_table(
        "Fig 3 - HSV shadow removal",
        ["variant", "shadow", "detection", "discrimination", "leakage", "person IoU"],
        rows,
        note="paper: 'the result for human segmentation is quite successful'",
    )

    on = rows[0]
    off = rows[1]
    assert on[2] > 0.85, "most candidate shadow pixels must be detected"
    assert on[3] > 0.95, "person pixels must survive the shadow mask"
    assert on[4] < 0.05, "almost no shadow may leak into the silhouette"
    assert on[5] > off[5], "removing shadows must improve the silhouette"
