"""Extension bench — camera shake and stabilisation.

The paper assumes a tripod ("with a proper setting of the video
capturing"); a parent filming by hand violates that.  This bench
quantifies the damage per-frame camera jitter does to the Section 2
pipeline and how much the phase/search registration pre-pass recovers.

Expected shape: segmentation IoU collapses with shake amplitude when
unstabilised (the background estimator sees every pixel "change") and
returns to near-tripod quality with stabilisation on.
"""

import pytest

from repro.segmentation.evaluation import evaluate_sequence
from repro.segmentation.pipeline import SegmentationConfig, SegmentationPipeline
from repro.video.synthesis import SyntheticJumpConfig, synthesize_jump


@pytest.mark.benchmark(group="stabilization")
def test_camera_shake_and_stabilization(benchmark, repro_table):
    rows = []
    scores = {}
    for jitter in (0.0, 1.0, 2.0):
        jump = synthesize_jump(SyntheticJumpConfig(seed=0, camera_jitter=jitter))
        for stabilize in (False, True):
            pipeline = SegmentationPipeline(
                SegmentationConfig(stabilize=stabilize)
            )
            segmentations = pipeline.segment_video(jump.video)
            evaluation = evaluate_sequence(segmentations, jump, pipeline.background)
            scores[(jitter, stabilize)] = evaluation.mean_person_iou
            rows.append(
                [
                    f"jitter sigma {jitter}px",
                    "stabilized" if stabilize else "raw",
                    evaluation.mean_person_iou,
                    float(min(evaluation.person_iou)),
                ]
            )

    jump = synthesize_jump(SyntheticJumpConfig(seed=0, camera_jitter=2.0))
    pipeline = SegmentationPipeline(SegmentationConfig(stabilize=True))
    benchmark.pedantic(
        pipeline.segment_video, args=(jump.video,), rounds=2, iterations=1
    )

    repro_table(
        "Extension - camera shake vs stabilization",
        ["camera shake", "pipeline", "mean person IoU", "min IoU"],
        rows,
        note="the paper assumes a tripod; stabilisation makes handheld footage work",
    )

    assert scores[(2.0, False)] < scores[(0.0, False)] - 0.1, (
        "unstabilised shake must hurt"
    )
    assert scores[(2.0, True)] > scores[(2.0, False)], "stabilisation must help"
    assert scores[(2.0, True)] > 0.95, "stabilised shake ~ tripod quality"
