"""Benchmark harness support.

Every bench regenerates one artefact of the paper (a figure or table)
and registers a *reproduction table* with the ``repro_table`` fixture.
The tables are printed in the terminal summary and saved as JSON under
``benchmarks/results/`` so EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.video.synthesis import SyntheticJumpConfig, synthesize_jump

RESULTS_DIR = Path(__file__).parent / "results"

_TABLES: list[tuple[str, list[str], list[list[str]], str]] = []


@pytest.fixture(scope="session")
def jump():
    """The reference clean jump used across benches."""
    return synthesize_jump(SyntheticJumpConfig(seed=0))


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


@pytest.fixture()
def repro_table():
    """Register a reproduction table: (title, header, rows, note)."""

    def add(title: str, header: list[str], rows: list[list], note: str = "") -> None:
        formatted = [
            [f"{cell:.3f}" if isinstance(cell, float) else str(cell) for cell in row]
            for row in rows
        ]
        _TABLES.append((title, [str(h) for h in header], formatted, note))
        RESULTS_DIR.mkdir(exist_ok=True)
        slug = (
            title.lower()
            .replace(" ", "_")
            .replace("/", "-")
            .replace("(", "")
            .replace(")", "")
        )
        payload = {"title": title, "header": header, "rows": formatted, "note": note}
        (RESULTS_DIR / f"{slug}.json").write_text(json.dumps(payload, indent=2))

    return add


def _render_table(title: str, header: list[str], rows: list[list[str]], note: str) -> str:
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = [f"--- {title} ---"]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "paper reproduction tables")
    for title, header, rows, note in _TABLES:
        terminalreporter.write_line(_render_table(title, header, rows, note))
        terminalreporter.write_line("")
