"""Table 1 — the seven evaluation standards, detected end to end.

The paper formulates standards E1–E7 but leaves the scoring system as
future work ("the scoring part is yet to be implemented and tested").
This bench completes it: for each standard, a jump violating exactly
that standard is synthesized and pushed through the *full* pipeline
(segmentation → GA tracking → rules), plus one clean jump.  The
reported confusion is detection of the injected flaw.

Expected shape: each flawed jump is flagged for its own standard; the
clean jump is flagged for nothing.
"""

import numpy as np
import pytest

from repro.model.annotation import simulate_human_annotation
from repro.pipeline import JumpAnalyzer
from repro.scoring.standards import Standard
from repro.video.synthesis import SyntheticJumpConfig, synthesize_jump


def _analyzer() -> JumpAnalyzer:
    # Full-strength defaults: this bench is the paper's headline
    # application, so it gets the real tracking budget.
    return JumpAnalyzer()


def _detected(violated: tuple[Standard, ...], seed: int) -> tuple[set, set]:
    jump = synthesize_jump(SyntheticJumpConfig(seed=seed, violated=violated))
    annotation = simulate_human_annotation(
        jump.motion.poses[0],
        jump.dims,
        mask=jump.person_masks[0],
        rng=np.random.default_rng(seed),
    )
    analysis = _analyzer().analyze(
        jump.video, annotation=annotation, rng=np.random.default_rng(seed)
    )
    return set(violated), set(analysis.report.violated_standards)


@pytest.mark.benchmark(group="table1-standards")
def test_table1_standard_detection(benchmark, repro_table):
    cases = [((), 40)] + [((standard,), 41 + i) for i, standard in enumerate(Standard)]

    def run_all():
        return [_detected(violated, seed) for violated, seed in cases]

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    true_positives = 0
    false_alarms = 0
    for (violated, seed), (injected, detected) in zip(cases, outcomes):
        name = "+".join(s.name for s in injected) or "clean"
        hit = injected <= detected
        spurious = detected - injected
        if injected and hit:
            true_positives += 1
        false_alarms += len(spurious)
        rows.append(
            [
                name,
                ", ".join(sorted(s.name for s in detected)) or "none",
                "yes" if (hit if injected else not detected) else "NO",
            ]
        )
    rows.append(["injected flaws detected", f"{true_positives}/7", ""])
    rows.append(["spurious detections (8 jumps)", str(false_alarms), ""])

    repro_table(
        "Table 1 - standards detected end-to-end",
        ["jump (injected flaw)", "detected violations", "correct"],
        rows,
        note="full pipeline: segmentation -> GA tracking -> Table 2 rules",
    )

    assert true_positives >= 6, "at least 6 of 7 injected flaws must be caught"
    assert false_alarms <= 2, "spurious detections must stay rare"
