"""Fig. 6 — silhouettes and the annotated stick model over a sequence.

The paper shows computer-extracted silhouettes for consecutive frames
of one jump with manually drawn stick models.  This bench reproduces
both halves: per-frame silhouette IoU over the full 20-frame sequence
(the extraction quality the figure demonstrates), and the quality of
the simulated human annotation on frame 0 (fitness and containment of
the drawn model, plus the thickness calibration the paper derives from
it).
"""

import numpy as np
import pytest

from repro.imaging.metrics import iou
from repro.model.annotation import simulate_human_annotation
from repro.model.containment import ContainmentChecker
from repro.model.fitness import SilhouetteFitness
from repro.segmentation.pipeline import SegmentationPipeline


@pytest.mark.benchmark(group="fig6-sequence")
def test_fig6_silhouette_sequence(benchmark, jump, repro_table):
    pipeline = SegmentationPipeline()

    def extract():
        return pipeline.silhouettes(jump.video)

    silhouettes = benchmark.pedantic(extract, rounds=3, iterations=1)

    scores = [
        iou(sil, jump.person_masks[k]) for k, sil in enumerate(silhouettes)
    ]

    annotation = simulate_human_annotation(
        jump.motion.poses[0],
        jump.dims,
        mask=silhouettes[0],
        rng=np.random.default_rng(0),
    )
    fitness = SilhouetteFitness(silhouettes[0], annotation.dims)
    checker = ContainmentChecker(silhouettes[0], annotation.dims)
    annotated_fitness = fitness.evaluate_pose(annotation.pose)
    annotated_feasible = checker.check_pose(annotation.pose)

    rows = [
        ["mean silhouette IoU (20 frames)", float(np.mean(scores))],
        ["min silhouette IoU", float(np.min(scores))],
        ["max silhouette IoU", float(np.max(scores))],
        ["annotated model fitness F_S (frame 0)", annotated_fitness],
        ["annotated model inside silhouette", str(annotated_feasible)],
        [
            "calibrated trunk thickness (px)",
            float(annotation.dims.thicknesses[0]),
        ],
    ]
    repro_table(
        "Fig 6 - silhouette sequence + annotated model",
        ["quantity", "value"],
        rows,
        note="paper shows silhouettes + hand-drawn stick models across ~20 frames",
    )

    assert float(np.mean(scores)) > 0.9
    assert float(np.min(scores)) > 0.75
    assert annotated_fitness < 0.5
    assert annotated_feasible
