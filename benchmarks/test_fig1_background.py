"""Fig. 1 — background estimation from a jump video.

The paper shows the first frame of a sequence (with the jumper
standing in it) next to the background image recovered by change
detection.  This bench quantifies that recovery — RMSE against the
true clean background and pixel coverage — for the paper's change
detection (three aggregation modes) and the temporal-median baseline.

Expected shape: change detection recovers the background to within a
few percent RMSE even though the jumper is present in every frame, and
the longest-run aggregation beats the naive mean (which bakes in a
ghost of the standing jumper).
"""

import pytest

from repro.imaging.metrics import rmse
from repro.segmentation.background import (
    ChangeDetectionBackgroundEstimator,
    ChangeDetectionConfig,
    MedianBackgroundEstimator,
)


@pytest.mark.benchmark(group="fig1-background")
def test_fig1_background_estimation(benchmark, jump, repro_table):
    estimators = {
        "change-detection (longest run)": ChangeDetectionBackgroundEstimator(
            ChangeDetectionConfig(aggregation="longest_run")
        ),
        "change-detection (mean, literal)": ChangeDetectionBackgroundEstimator(
            ChangeDetectionConfig(aggregation="mean")
        ),
        "change-detection (median)": ChangeDetectionBackgroundEstimator(
            ChangeDetectionConfig(aggregation="median")
        ),
        "temporal median (baseline)": MedianBackgroundEstimator(),
    }

    truth = jump.background
    rows = []
    results = {}
    for name, estimator in estimators.items():
        result = estimator.estimate(jump.video)
        results[name] = result
        rows.append(
            [
                name,
                rmse(result.background, truth),
                result.coverage,
                int(result.support.max()),
            ]
        )

    # Benchmark the paper's estimator itself.
    default = ChangeDetectionBackgroundEstimator()
    benchmark.pedantic(default.estimate, args=(jump.video,), rounds=3, iterations=1)

    repro_table(
        "Fig 1 - background estimation",
        ["estimator", "rmse vs truth", "coverage", "max support"],
        rows,
        note="paper: estimated background visually free of the jumper",
    )

    run = rmse(results["change-detection (longest run)"].background, truth)
    mean = rmse(results["change-detection (mean, literal)"].background, truth)
    assert run < 0.05, "background should be recovered to within 5% RMSE"
    assert run <= mean + 1e-9, "longest-run must not lose to the literal mean"
    assert results["change-detection (longest run)"].coverage > 0.95
