"""Fig. 4/5 and Eq. 3 — stick model and fitness landscape.

The paper defines the 8-stick model with angles measured from the
vertical, and the fitness of Eq. 3.  This bench verifies the fitness
is a usable objective: the true pose scores near the minimum, and the
score degrades monotonically as the pose is perturbed (both in
translation and in joint angles).  The timed section measures one
Eq. 3 evaluation over a realistic population, the inner loop of the
whole Section 3 search.
"""

import numpy as np
import pytest

from repro.model.fitness import SilhouetteFitness
from repro.model.pose import StickPose
from repro.model.sticks import default_body
from repro.video.synthesis.render import person_mask_for_pose


@pytest.mark.benchmark(group="fig4-fitness")
def test_fig4_fitness_landscape(benchmark, rng, repro_table):
    body = default_body(72.0)
    pose = StickPose.standing(70.0, 55.0).with_angle("thigh", 150.0).with_angle(
        "shank", 210.0
    )
    mask = person_mask_for_pose(pose, body, (120, 160))
    fitness = SilhouetteFitness(mask, body)

    rows = [["true pose", 0.0, fitness.evaluate_pose(pose)]]
    # Translation perturbations.
    for dx in (2.0, 5.0, 10.0, 20.0):
        scores = [
            fitness.evaluate_pose(pose.translated(dx * np.cos(a), dx * np.sin(a)))
            for a in np.linspace(0, 2 * np.pi, 8, endpoint=False)
        ]
        rows.append([f"translated {dx:.0f}px", dx, float(np.mean(scores))])
    # Angle perturbations (all sticks jittered).
    for sigma in (5.0, 15.0, 30.0, 60.0):
        scores = []
        for _ in range(12):
            genes = pose.to_genes()
            genes[2:] += rng.normal(0.0, sigma, 8)
            scores.append(float(fitness.evaluate(genes)))
        rows.append([f"angles jittered sigma={sigma:.0f}deg", sigma, float(np.mean(scores))])

    population = np.stack([pose.to_genes() + rng.normal(0, 3, 10) for _ in range(60)])
    benchmark.pedantic(fitness.evaluate, args=(population,), rounds=5, iterations=1)

    repro_table(
        "Fig 4/Eq 3 - fitness landscape",
        ["perturbation", "magnitude", "mean fitness F_S"],
        rows,
        note="lower is better; the true pose must be near the minimum",
    )

    base = rows[0][2]
    translations = [row[2] for row in rows[1:5]]
    jitters = [row[2] for row in rows[5:]]
    assert all(base < value for value in translations + jitters)
    assert translations == sorted(translations), "fitness grows with offset"
    assert jitters == sorted(jitters), "fitness grows with angle noise"
