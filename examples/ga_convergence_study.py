"""GA convergence study: temporal seeding vs random initialisation.

Run with::

    python examples/ga_convergence_study.py

Reproduces the paper's Section 3 comparison as convergence curves
printed as ASCII: the temporal GA (population seeded from the previous
frame, the paper's contribution) reaches its final quality within a
couple of generations, while the randomly initialised single-frame GA
of Shoji et al. [5] grinds for on the order of a hundred generations.
"""

import numpy as np

from repro import SingleFrameConfig, estimate_single_frame, synthesize_jump
from repro.ga.temporal import TemporalPoseTracker, TrackerConfig
from repro.model.fitness import FitnessConfig

FRAME = 12


def ascii_curve(history, width=60, height=12, title=""):
    values = np.asarray([stats.best_fitness for stats in history])
    if values.size > width:
        idx = np.linspace(0, values.size - 1, width).astype(int)
        values = values[idx]
    lo, hi = float(values.min()), float(values.max())
    span = (hi - lo) or 1.0
    rows = []
    for level in range(height, -1, -1):
        threshold = lo + span * level / height
        line = "".join("#" if v <= threshold else " " for v in values)
        rows.append(f"{threshold:7.3f} |{line}")
    print(f"\n{title}")
    print("\n".join(rows))
    print(" " * 9 + "+" + "-" * len(values))
    print(" " * 9 + f" generation 0..{len(history) - 1}")


def main() -> None:
    jump = synthesize_jump()
    mask = jump.person_masks[FRAME]
    prev_pose = jump.motion.poses[FRAME - 1]

    # Temporal GA (paper).
    tracker = TemporalPoseTracker(
        jump.dims,
        TrackerConfig(
            containment_margin=1,
            min_inside_fraction=0.95,
            containment_samples=7,
            temporal_weight=0.0,
        ),
    )
    _, temporal = tracker.estimate_frame(mask, prev_pose, np.random.default_rng(0))

    # Single-frame GA (Shoji et al. [5] baseline).
    single = estimate_single_frame(
        mask,
        jump.dims,
        SingleFrameConfig(fitness=FitnessConfig(max_points=1000)),
        rng=np.random.default_rng(1),
    ).search

    ascii_curve(
        temporal.history,
        title=f"temporal GA: best F_S per generation "
        f"(final {temporal.best_fitness:.3f}, "
        f"{temporal.total_evaluations} evaluations)",
    )
    ascii_curve(
        single.history,
        title=f"single-frame GA [5]: best (penalised) fitness per generation "
        f"(final {single.best_fitness:.3f}, "
        f"{single.total_evaluations} evaluations)",
    )

    reach_t = temporal.generations_to_reach(temporal.best_fitness * 1.10)
    reach_s = single.generations_to_reach(single.best_fitness * 1.10)
    print()
    print(f"generations to reach 110% of final fitness:")
    print(f"  temporal GA    : {reach_t}")
    print(f"  single-frame GA: {reach_s}")


if __name__ == "__main__":
    main()
