"""Training progress: compare a jumper before and after practice.

Run with::

    python examples/training_progress.py [output_dir]

Simulates the coaching loop the paper motivates: a first jump with two
technique flaws (no arm backswing, straight legs in the air), a second
jump after practice with both fixed, both analysed by the full
pipeline, then diffed rule by rule.  Also writes an angle chart PNG
comparing the arm swing of the two attempts.
"""

import sys
from pathlib import Path

import numpy as np

from repro import JumpAnalyzer, Standard, simulate_human_annotation
from repro.imaging.io import write_png
from repro.model.sticks import UPPER_ARM
from repro.scoring.progress import compare_reports
from repro.video.synthesis import SyntheticJumpConfig, synthesize_jump
from repro.visualization import angle_chart


def analyze(violated, seed):
    jump = synthesize_jump(SyntheticJumpConfig(seed=seed, violated=violated))
    annotation = simulate_human_annotation(
        jump.motion.poses[0],
        jump.dims,
        mask=jump.person_masks[0],
        rng=np.random.default_rng(seed),
    )
    return JumpAnalyzer().analyze(
        jump.video, annotation=annotation, rng=np.random.default_rng(seed)
    )


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("figures")
    out.mkdir(parents=True, exist_ok=True)

    print("analysing attempt 1 (before practice: flaws E3 + E5)…")
    before = analyze((Standard.E3, Standard.E5), seed=300)
    print("analysing attempt 2 (after practice: clean)…")
    after = analyze((), seed=301)

    progress = compare_reports(before.report, after.report)
    print()
    print(progress.render_text())
    print()
    print(
        f"distance: {before.measurement.distance:.1f}px -> "
        f"{after.measurement.distance:.1f}px"
    )

    chart = angle_chart(
        {
            "arm before": np.array(
                [pose.angles_deg[UPPER_ARM] for pose in before.poses]
            ),
            "arm after": np.array(
                [pose.angles_deg[UPPER_ARM] for pose in after.poses]
            ),
        },
        y_range=(0.0, 360.0),
    )
    path = out / "training_arm_swing.png"
    write_png(path, chart)
    print(f"wrote arm-swing comparison chart to {path}")


if __name__ == "__main__":
    main()
