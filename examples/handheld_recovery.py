"""Handheld footage: break the pipeline with camera shake, then fix it.

Run with::

    python examples/handheld_recovery.py [output_dir]

The paper assumes a tripod.  This example simulates a parent filming
by hand (per-frame camera jitter), shows how badly the Section 2
pipeline degrades, then turns on the registration-based stabilisation
pre-pass and recovers tripod-level silhouettes.  Writes a comparison
strip PNG.
"""

import sys
from pathlib import Path

import numpy as np

from repro.imaging.io import write_png
from repro.imaging.metrics import iou
from repro.segmentation import SegmentationConfig, SegmentationPipeline
from repro.video.synthesis import SyntheticJumpConfig, synthesize_jump
from repro.visualization import mask_to_rgb


def evaluate(jump, stabilize: bool):
    pipeline = SegmentationPipeline(SegmentationConfig(stabilize=stabilize))
    segmentations = pipeline.segment_video(jump.video)
    scores = [
        iou(seg.person, jump.person_masks[k])
        for k, seg in enumerate(segmentations)
    ]
    return segmentations, float(np.mean(scores)), float(min(scores))


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("figures")
    out.mkdir(parents=True, exist_ok=True)

    jump = synthesize_jump(SyntheticJumpConfig(seed=0, camera_jitter=2.0))
    print("synthesized a jump filmed with a shaky hand (jitter sigma = 2px)\n")

    raw_segs, raw_mean, raw_min = evaluate(jump, stabilize=False)
    print(f"tripod-assuming pipeline : mean IoU {raw_mean:.3f} (min {raw_min:.3f})")

    stable_segs, stable_mean, stable_min = evaluate(jump, stabilize=True)
    print(f"with stabilisation       : mean IoU {stable_mean:.3f} (min {stable_min:.3f})")

    k = int(np.argmin([iou(s.person, jump.person_masks[i]) for i, s in enumerate(raw_segs)]))
    strip = np.concatenate(
        [
            jump.video[k],
            mask_to_rgb(jump.person_masks[k]),
            mask_to_rgb(raw_segs[k].person),
            mask_to_rgb(stable_segs[k].person),
        ],
        axis=1,
    )
    path = out / "handheld_recovery.png"
    write_png(path, strip)
    print(f"\nwrote frame {k} comparison (video | truth | raw | stabilised) to {path}")


if __name__ == "__main__":
    main()
