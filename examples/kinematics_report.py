"""Kinematics report: trajectory, events and flight ballistics.

Run with::

    python examples/kinematics_report.py

Goes beyond the paper's scoring rules: tracks a jump, then derives the
quantities a sports scientist would ask for — joint-angle tracks,
takeoff/landing events, centre-of-mass flight parabola, horizontal
velocity — and prints them as a compact report.
"""

import numpy as np

from repro import JumpAnalyzer, simulate_human_annotation, synthesize_jump
from repro.analysis import (
    PoseTrajectory,
    center_of_mass_track,
    fit_flight_parabola,
)
from repro.model.sticks import STICK_NAMES, TRUNK, UPPER_ARM, SHANK, THIGH


def main() -> None:
    jump = synthesize_jump()
    annotation = simulate_human_annotation(
        jump.motion.poses[0],
        jump.dims,
        mask=jump.person_masks[0],
        rng=np.random.default_rng(0),
    )
    analysis = JumpAnalyzer().analyze(
        jump.video, annotation=annotation, rng=np.random.default_rng(1)
    )

    trajectory = PoseTrajectory.from_poses(analysis.poses)
    velocity = trajectory.angular_velocity()

    print("=== joint-angle dynamics (tracked) ===")
    for stick in (TRUNK, UPPER_ARM, THIGH, SHANK):
        track = trajectory.angles[:, stick]
        peak = float(np.abs(velocity[:, stick]).max())
        print(
            f"{STICK_NAMES[stick]:10s} range [{track.min():7.1f}, {track.max():7.1f}] deg  "
            f"peak speed {peak:5.1f} deg/frame"
        )

    events = analysis.events
    print()
    print("=== events ===")
    print(f"takeoff frame : {events.takeoff_frame} (truth {jump.motion.takeoff_frame})")
    print(f"landing frame : {events.landing_frame}")
    print(f"peak frame    : {events.peak_frame}")
    print(f"ground height : {events.ground_height:.1f}px")

    fit = fit_flight_parabola(
        analysis.poses, annotation.dims, events.takeoff_frame, events.landing_frame
    )
    print()
    print("=== flight ballistics (CoM parabola fit) ===")
    print(f"apex height        : {fit.apex_height:.1f}px above takeoff")
    print(f"apex at frame      : {fit.apex_frame:.1f}")
    print(f"horizontal velocity: {fit.horizontal_velocity:.1f}px/frame")
    print(f"fitted gravity     : {fit.gravity:.2f}px/frame^2")
    print(f"fit residual (rms) : {fit.residual_rms:.2f}px")

    com = center_of_mass_track(analysis.poses, annotation.dims)
    print()
    print("=== centre of mass (every 4th frame) ===")
    for k in range(0, len(analysis.poses), 4):
        print(f"frame {k:2d}: x={com[k, 0]:6.1f}  y={com[k, 1]:6.1f}")

    print()
    print(f"jump distance: {analysis.measurement.distance:.1f}px, "
          f"score {analysis.report.score * 100:.0f}%")


if __name__ == "__main__":
    main()
