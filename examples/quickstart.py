"""Quickstart: synthesize a jump, analyze it, print the score report.

Run with::

    python examples/quickstart.py

This is the smallest end-to-end tour of the library: generate a
labelled standing-long-jump video, simulate the first-frame human
annotation the paper assumes, run the full pipeline (Section 2
segmentation, Section 3 GA tracking, Section 4 scoring) and print what
a coach would see.
"""

import numpy as np

from repro import (
    JumpAnalyzer,
    simulate_human_annotation,
    synthesize_jump,
)


def main() -> None:
    # 1. A synthetic 20-frame side-view video with ground truth.
    jump = synthesize_jump()
    print(f"synthesized video: {jump.video.shape} (T, H, W, C)")

    # 2. The "trained person draws the stick figure in the first frame"
    #    step of the paper, simulated with small annotation jitter.
    annotation = simulate_human_annotation(
        jump.motion.poses[0],
        jump.dims,
        mask=jump.person_masks[0],
        rng=np.random.default_rng(0),
    )

    # 3. The full pipeline.
    analysis = JumpAnalyzer().analyze(
        jump.video, annotation=annotation, rng=np.random.default_rng(1)
    )

    # 4. Results.
    print()
    print(analysis.report.render_text())
    print()
    measurement = analysis.measurement
    print(
        f"jump distance: {measurement.distance:.1f}px "
        f"({measurement.relative_to_stature:.2f} statures)"
    )
    print(
        f"takeoff frame {analysis.events.takeoff_frame}, "
        f"landing frame {analysis.events.landing_frame} "
        f"(ground truth takeoff: {jump.motion.takeoff_frame})"
    )


if __name__ == "__main__":
    main()
