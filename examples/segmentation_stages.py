"""Segmentation stages: render Fig. 1–3 as PNG images.

Run with::

    python examples/segmentation_stages.py [output_dir]

Writes the paper's figures, regenerated, to ``output_dir`` (default
``./figures``):

* ``fig1_first_frame.png`` / ``fig1_background.png`` — Fig. 1(a)/(b);
* ``fig2_stages.png`` — Fig. 2(a)–(d) side by side for one frame;
* ``fig3_shadow_removed.png`` — Fig. 3: final silhouette vs the
  pre-shadow-removal mask;
* ``fig6_strip.png`` — Fig. 6-style strip: silhouettes of consecutive
  frames with the ground-truth stick model overlaid.
"""

import sys
from pathlib import Path

import numpy as np

from repro import SegmentationPipeline, synthesize_jump
from repro.imaging import paint_mask, stick_figure_mask
from repro.imaging.io import write_png
from repro.model.geometry import world_to_image


def mask_to_rgb(mask):
    return np.stack([mask.astype(float)] * 3, axis=-1)


def overlay_model(mask, pose, dims, color=(1.0, 0.25, 0.25)):
    image = mask_to_rgb(mask) * 0.6
    height = mask.shape[0]
    segments = pose.segments(dims)
    seglist = [
        (tuple(world_to_image(seg[0], height)), tuple(world_to_image(seg[1], height)))
        for seg in segments
    ]
    sticks = stick_figure_mask(mask.shape, seglist, thickness=1.5)
    paint_mask(image, sticks, color)
    return image


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("figures")
    out.mkdir(parents=True, exist_ok=True)

    jump = synthesize_jump()
    pipeline = SegmentationPipeline()
    segmentations = pipeline.segment_video(jump.video)

    # Fig. 1: first frame and estimated background.
    write_png(out / "fig1_first_frame.png", jump.video[0])
    write_png(out / "fig1_background.png", pipeline.background)

    # Fig. 2: stages for one mid-jump frame.
    k = 8
    seg = segmentations[k]
    stages = [
        seg.raw_foreground,
        seg.after_noise_removal,
        seg.after_spot_removal,
        seg.after_hole_fill,
    ]
    strip = np.concatenate([mask_to_rgb(stage) for stage in stages], axis=1)
    write_png(out / "fig2_stages.png", strip)

    # Fig. 3: before/after shadow removal.
    pair = np.concatenate(
        [mask_to_rgb(seg.after_hole_fill), mask_to_rgb(seg.person)], axis=1
    )
    write_png(out / "fig3_shadow_removed.png", pair)

    # Fig. 6: silhouettes of consecutive frames with stick models.
    frames = [2, 6, 10, 14, 18]
    tiles = [
        overlay_model(segmentations[i].person, jump.motion.poses[i], jump.dims)
        for i in frames
    ]
    write_png(out / "fig6_strip.png", np.concatenate(tiles, axis=1))

    print(f"wrote Fig. 1/2/3/6 reproductions to {out}/")


if __name__ == "__main__":
    main()
