"""Web-service demo: the paper's future-work system, working.

Run with::

    python examples/web_service_demo.py

Starts the analysis service on a local port (background thread),
submits a synthetic jump video exactly as a remote client would
(base64 npz over the ``/v1`` job API), polls the job while it runs,
and prints the advice that comes back.
"""

import numpy as np

from repro import ServiceClient, Standard, simulate_human_annotation
from repro.serialization import annotation_to_dict
from repro.service import ServiceHandle
from repro.video.synthesis import synthesize_flawed_jump


def main() -> None:
    jump = synthesize_flawed_jump(Standard.E5, seed=77)
    annotation = simulate_human_annotation(
        jump.motion.poses[0],
        jump.dims,
        mask=jump.person_masks[0],
        rng=np.random.default_rng(0),
    )

    with ServiceHandle() as service:
        print(f"service listening on {service.address}")
        print("uploading a 20-frame jump video (flaw: E5, knees not bent in the air)…")
        client = ServiceClient(service.address)
        job = client.submit(
            jump.video,
            annotation=annotation_to_dict(annotation),
            seed=1,
        )
        print(f"job {job['id']} accepted; waiting for the pipeline…")
        result = client.wait(job["id"])
        record = client.job(job["id"])
        progress = record["progress"]
        print(f"job finished: {record['state']} "
              f"({progress['total_stages']} stages)")

    report = result["report"]
    print()
    print(f"score: {report['score'] * 100:.0f}% "
          f"({sum(r['passed'] for r in report['rules'])}/7 rules)")
    for rule in report["rules"]:
        mark = "PASS" if rule["passed"] else "FAIL"
        print(f"  {rule['rule']} [{mark}] {rule['description']:<34s} "
              f"observed {rule['value_deg']:7.1f} deg")
    print()
    if report["advice"]:
        print("advice returned to the jumper:")
        for advice in report["advice"]:
            print(f"  - {advice}")
    distance = result["measurement"]["distance_px"]
    print(f"\nmeasured jump: {distance:.1f}px "
          f"({result['measurement']['relative_to_stature']:.2f} statures)")


if __name__ == "__main__":
    main()
