"""Coaching feedback: detect specific technique flaws in flawed jumps.

Run with::

    python examples/coaching_feedback.py

The paper's motivation is physical education: "the system will be able
to detect improper movements and give advices to the jumper."  This
example synthesizes one jump per Table 1 standard, each violating
exactly that standard, runs the full pipeline, and prints the advice
the system issues — alongside whether the right flaw was caught.
"""

import numpy as np

from repro import JumpAnalyzer, Standard, simulate_human_annotation
from repro.video.synthesis import synthesize_flawed_jump


def analyze_flawed(standard: Standard, seed: int) -> None:
    jump = synthesize_flawed_jump(standard, seed=seed)
    annotation = simulate_human_annotation(
        jump.motion.poses[0],
        jump.dims,
        mask=jump.person_masks[0],
        rng=np.random.default_rng(seed),
    )
    analysis = JumpAnalyzer().analyze(
        jump.video, annotation=annotation, rng=np.random.default_rng(seed)
    )
    detected = set(analysis.report.violated_standards)
    verdict = "CAUGHT" if standard in detected else "missed"
    extra = detected - {standard}

    print(f"=== jump violating {standard.name}: {standard.description} ===")
    print(f"    detected: {sorted(s.name for s in detected) or 'none'} -> {verdict}"
          + (f" (extra: {sorted(s.name for s in extra)})" if extra else ""))
    for advice in analysis.report.advice():
        print(f"    advice: {advice}")
    print()


def main() -> None:
    print("Coaching feedback on seven flawed jumps (full pipeline)\n")
    for index, standard in enumerate(Standard):
        analyze_flawed(standard, seed=200 + index)


if __name__ == "__main__":
    main()
