"""Restart-resume smoke: SIGKILL the service mid-job, restart, assert
the job resumes from its checkpoint and finishes with a report.

The CI counterpart of the `kill_worker_mid_job` ops-chaos scenario,
run against the real process boundary: a served `slj serve
--state-dir` instance is killed with SIGKILL (no drain, no cleanup)
while a job is RUNNING, restarted on the same state dir, and the job
must land `succeeded` with `"resumed": true` and a scored report.

Usage (from the repo root, PYTHONPATH=src on the child processes too):

    PYTHONPATH=src python scripts/restart_resume_smoke.py
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request

PORT = int(os.environ.get("SMOKE_PORT", "8961"))
BASE = f"http://127.0.0.1:{PORT}/v1"


def req(method: str, path: str, data: bytes | None = None) -> dict:
    request = urllib.request.Request(
        BASE + path,
        data=data,
        headers={"Content-Type": "application/json"},
        method=method,
    )
    with urllib.request.urlopen(request, timeout=10) as resp:
        return json.loads(resp.read())


def wait_up(proc: subprocess.Popen, attempts: int = 150) -> None:
    for _ in range(attempts):
        if proc.poll() is not None:
            sys.exit(f"service exited early with code {proc.returncode}")
        time.sleep(0.1)
        try:
            req("GET", "/health")
            return
        except Exception:
            continue
    sys.exit("service never came up")


def main() -> None:
    from repro.service import encode_video
    from repro.video.synthesis import SyntheticJumpConfig, synthesize_jump

    jump = synthesize_jump(SyntheticJumpConfig(seed=0))
    body = json.dumps(
        {
            "video_npz_b64": encode_video(jump.video),
            "seed": 0,
            "preset": "fast",
        }
    ).encode()

    workdir = tempfile.mkdtemp(prefix="resume-smoke-")
    state_dir = os.path.join(workdir, "state")

    def start() -> subprocess.Popen:
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                str(PORT),
                "--state-dir",
                state_dir,
                "--drain-timeout",
                "2",
            ],
            env=dict(os.environ),
        )

    proc = start()
    try:
        wait_up(proc)
        job_id = req("POST", "/jobs", body)["job"]["id"]
        state = "submitted"
        for _ in range(200):
            state = req("GET", f"/jobs/{job_id}")["job"]["state"]
            if state == "running":
                break
            time.sleep(0.05)
        print("state before kill:", state)
        assert state == "running", f"job never started: {state}"

        proc.send_signal(signal.SIGKILL)  # hard kill: no drain, no cleanup
        proc.wait(timeout=10)

        proc = start()
        wait_up(proc)

        deadline = time.time() + 240
        payload = {}
        while time.time() < deadline:
            payload = req("GET", f"/jobs/{job_id}")["job"]
            if payload["state"] in ("succeeded", "failed", "cancelled"):
                break
            time.sleep(0.2)
        print(
            "state after restart:",
            payload.get("state"),
            "resumed:",
            payload.get("resumed"),
        )
        assert payload.get("state") == "succeeded", payload
        assert payload.get("resumed") is True, payload

        analysis = req("GET", f"/jobs/{job_id}/result")["analysis"]
        assert analysis["report"]["score"] is not None

        metrics = req("GET", "/metrics")
        print("resumed_jobs metric:", metrics["service"]["resumed_jobs"])
        assert metrics["service"]["resumed_jobs"] >= 1

        proc.send_signal(signal.SIGTERM)  # graceful: drains, then exits 0
        assert proc.wait(timeout=30) == 0
        print("restart-resume smoke OK")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
