"""Print the committed bench trajectory and validate each file's schema.

The repo commits one bench report per perf-focused PR (``BENCH_4`` →
``BENCH_6`` → ``BENCH_7`` → ``BENCH_9`` → ``BENCH_10``).  This script is the cheap CI
guard that keeps those files honest: every committed report must still
parse, carry the sections its vintage promised, and the end-to-end
throughput trend is printed so a regression is visible in the log even
when it stays inside the gate's allowed factor.

Usage (from the repo root):

    python scripts/bench_trend.py

Exits non-zero when a committed file is missing, unparseable, or
missing a required section.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Committed reports in chronological order, with the sections each
#: vintage introduced (later files must carry everything earlier ones
#: did — sections are only ever added).
BENCH_FILES: tuple[tuple[str, tuple[str, ...]], ...] = (
    (
        "BENCH_4.json",
        ("segmentation", "ga_single_frame", "tracking", "end_to_end"),
    ),
    (
        "BENCH_6.json",
        (
            "segmentation",
            "ga_single_frame",
            "tracking",
            "end_to_end",
            "time_to_first_result",
        ),
    ),
    (
        "BENCH_7.json",
        (
            "segmentation",
            "ga_single_frame",
            "tracking",
            "end_to_end",
            "time_to_first_result",
            "multi_actor",
        ),
    ),
    (
        "BENCH_9.json",
        (
            "segmentation",
            "ga_single_frame",
            "tracking",
            "end_to_end",
            "time_to_first_result",
            "multi_actor",
            "fitness_batch",
            "scale_out",
        ),
    ),
    (
        "BENCH_10.json",
        (
            "segmentation",
            "ga_single_frame",
            "tracking",
            "end_to_end",
            "time_to_first_result",
            "multi_actor",
            "fitness_batch",
            "scale_out",
            "localization",
        ),
    ),
)


def _fail(message: str) -> None:
    print(f"bench_trend: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def _load(name: str) -> dict:
    path = ROOT / name
    if not path.exists():
        _fail(f"{name} is missing")
    try:
        report = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        _fail(f"{name} is not valid JSON: {exc}")
    for key in ("bench_version", "machine", "params", "sections"):
        if key not in report:
            _fail(f"{name} lacks top-level key {key!r}")
    return report


def _check_sections(name: str, report: dict, required: tuple[str, ...]) -> None:
    sections = report["sections"]
    missing = [section for section in required if section not in sections]
    if missing:
        _fail(f"{name} lacks section(s): {', '.join(missing)}")
    end_to_end = sections["end_to_end"]
    for side in ("baseline", "optimized"):
        if "frames_per_sec" not in end_to_end.get(side, {}):
            _fail(f"{name} end_to_end.{side} lacks frames_per_sec")
    if "scale_out" in required:
        scale_out = sections["scale_out"]
        sizes = scale_out.get("sizes") or []
        if not sizes:
            _fail(f"{name} scale_out carries no size entries")
        for entry in sizes:
            payload = entry.get("payload") or {}
            if payload.get("payload_reduction", 0) < 50:
                _fail(
                    f"{name} scale_out payload_reduction "
                    f"{payload.get('payload_reduction')} < 50x"
                )
    if "fitness_batch" in required:
        if "batch_speedup" not in sections["fitness_batch"]:
            _fail(f"{name} fitness_batch lacks batch_speedup")
    if "localization" in required:
        localization = sections["localization"]
        for key in ("frames", "windows_found", "windows_per_sec"):
            if key not in localization:
                _fail(f"{name} localization lacks {key}")
        if localization["windows_found"] < 1:
            _fail(f"{name} localization found no attempt windows")


def main() -> None:
    print(f"{'file':<14} {'frames':>6} {'baseline fps':>13} "
          f"{'optimized fps':>14} {'speedup':>8}")
    previous: float | None = None
    for name, required in BENCH_FILES:
        report = _load(name)
        _check_sections(name, report, required)
        end_to_end = report["sections"]["end_to_end"]
        optimized = float(end_to_end["optimized"]["frames_per_sec"])
        baseline = float(end_to_end["baseline"]["frames_per_sec"])
        frames = report["params"].get("frames", "?")
        delta = ""
        if previous is not None:
            delta = f"  ({optimized / previous - 1:+.0%} vs prev)"
        print(
            f"{name:<14} {frames:>6} {baseline:>13.3f} "
            f"{optimized:>14.3f} {end_to_end['speedup']:>8}{delta}"
        )
        previous = optimized
    print("bench_trend: all committed bench files validate")


if __name__ == "__main__":
    main()
