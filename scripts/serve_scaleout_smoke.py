"""Scale-out smoke: `slj serve --procs 2` against the real fork boundary.

CI's end-to-end proof of the multi-process serve path:

* one pre-bound listener, two forked worker processes — both must
  actually answer (distinct pids observed via ``/health``);
* a job submitted on one connection must succeed even though any
  replica may claim it from the shared directory store, and its
  result must be readable from whichever worker answers the poll;
* SIGTERM must drain both workers and exit 0.

Usage (from the repo root):

    PYTHONPATH=src python scripts/serve_scaleout_smoke.py
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request

PORT = int(os.environ.get("SMOKE_PORT", "8971"))
BASE = f"http://127.0.0.1:{PORT}/v1"


def req(method: str, path: str, data: bytes | None = None) -> dict:
    request = urllib.request.Request(
        BASE + path,
        data=data,
        headers={"Content-Type": "application/json"},
        method=method,
    )
    with urllib.request.urlopen(request, timeout=10) as resp:
        return json.loads(resp.read())


def wait_up(proc: subprocess.Popen, attempts: int = 150) -> None:
    for _ in range(attempts):
        if proc.poll() is not None:
            sys.exit(f"service exited early with code {proc.returncode}")
        time.sleep(0.1)
        try:
            req("GET", "/health")
            return
        except Exception:
            continue
    sys.exit("service never came up")


def main() -> None:
    from repro.service import encode_video
    from repro.video.synthesis import SyntheticJumpConfig, synthesize_jump

    jump = synthesize_jump(SyntheticJumpConfig(seed=0))
    body = json.dumps(
        {
            "video_npz_b64": encode_video(jump.video),
            "seed": 0,
            "preset": "fast",
        }
    ).encode()

    workdir = tempfile.mkdtemp(prefix="scaleout-smoke-")
    state_dir = os.path.join(workdir, "state")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            str(PORT),
            "--procs",
            "2",
            "--state-dir",
            state_dir,
            "--drain-timeout",
            "5",
        ],
        env=dict(os.environ),
    )
    try:
        wait_up(proc)

        # The kernel load-balances accepts: hammer /health on fresh
        # connections until both worker pids have answered.
        pids: set[int] = set()
        deadline = time.time() + 60
        while len(pids) < 2 and time.time() < deadline:
            pids.add(int(req("GET", "/health")["pid"]))
        print("worker pids observed:", sorted(pids))
        assert len(pids) == 2, f"expected 2 worker pids, saw {pids}"

        job_id = req("POST", "/jobs", body)["job"]["id"]
        print("submitted", job_id)
        deadline = time.time() + 240
        payload: dict = {}
        while time.time() < deadline:
            payload = req("GET", f"/jobs/{job_id}")["job"]
            if payload["state"] in ("succeeded", "failed", "cancelled"):
                break
            time.sleep(0.2)
        print("final state:", payload.get("state"))
        assert payload.get("state") == "succeeded", payload

        result = req("GET", f"/jobs/{job_id}/result")
        report = (result.get("analysis") or {}).get("report")
        assert report is not None, "result payload carries no report"
        print("score:", report.get("score"))

        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        assert code == 0, f"drain exited with {code}"
        print("scale-out smoke: OK (2 workers, shared queue, clean drain)")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
