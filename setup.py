"""Legacy setup shim.

The execution environment has setuptools but no ``wheel`` package, so
PEP 660 editable installs (which build a wheel) fail.  Keeping this
shim and omitting ``[build-system]`` from pyproject.toml makes
``pip install -e .`` take the legacy ``setup.py develop`` path, which
needs neither network access nor the wheel package.
"""

from setuptools import setup

setup()
