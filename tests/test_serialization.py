"""Tests for JSON serialisation of poses, annotations and reports."""

import json

import pytest

from repro.errors import ReproError
from repro.model.annotation import FirstFrameAnnotation
from repro.model.pose import StickPose
from repro.model.sticks import default_body
from repro.scoring.report import JumpScorer
from repro.serialization import (
    annotation_from_dict,
    annotation_to_dict,
    load_annotation,
    pose_from_dict,
    pose_to_dict,
    report_from_dict,
    report_to_dict,
    save_annotation,
)


class TestPoseRoundTrip:
    def test_roundtrip(self):
        pose = StickPose.standing(12.5, 34.0).with_angle("thigh", 123.4)
        back = pose_from_dict(pose_to_dict(pose))
        assert back == pose

    def test_json_compatible(self):
        payload = json.dumps(pose_to_dict(StickPose.standing(1, 2)))
        assert pose_from_dict(json.loads(payload)) == StickPose.standing(1, 2)

    def test_malformed(self):
        with pytest.raises(ReproError):
            pose_from_dict({"x0": 1.0})


class TestAnnotationRoundTrip:
    def _annotation(self):
        return FirstFrameAnnotation(
            pose=StickPose.standing(30.0, 50.0), dims=default_body(72.0)
        )

    def test_roundtrip(self):
        annotation = self._annotation()
        back = annotation_from_dict(annotation_to_dict(annotation))
        assert back.pose == annotation.pose
        assert back.dims.lengths == annotation.dims.lengths
        assert back.dims.thicknesses == annotation.dims.thicknesses

    def test_file_roundtrip(self, tmp_path):
        annotation = self._annotation()
        path = tmp_path / "annotation.json"
        save_annotation(path, annotation)
        back = load_annotation(path)
        assert back.pose == annotation.pose

    def test_malformed(self):
        with pytest.raises(ReproError):
            annotation_from_dict({"pose": {"x0": 0}})


class TestReportRoundTrip:
    def test_roundtrip(self, jump):
        report = JumpScorer().score(
            jump.motion.poses, takeoff_frame=jump.motion.takeoff_frame
        )
        data = report_to_dict(report)
        assert data["score"] == report.score
        assert len(data["rules"]) == 7
        back = report_from_dict(json.loads(json.dumps(data)))
        assert back.score == report.score
        assert [r.rule.rule_id for r in back.results] == [
            r.rule.rule_id for r in report.results
        ]
        assert [r.passed for r in back.results] == [
            r.passed for r in report.results
        ]

    def test_advice_serialised(self):
        from repro.video.synthesis import synthesize_flawed_jump
        from repro.scoring.standards import Standard

        flawed = synthesize_flawed_jump(Standard.E6, seed=5)
        report = JumpScorer().score(
            flawed.motion.poses, takeoff_frame=flawed.motion.takeoff_frame
        )
        data = report_to_dict(report)
        assert data["violated_standards"] == ["E6"]
        assert len(data["advice"]) == 1

    def test_malformed(self):
        with pytest.raises(ReproError):
            report_from_dict({"rules": [{"rule": "R9"}]})
