"""Streaming job surface: FrameQueue semantics + the HTTP endpoints."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.client import ServiceClient
from repro.errors import StreamError
from repro.jobs import FrameQueue, FrameQueueFull, JobsConfig, StreamIdleTimeout
from repro.pipeline import AnalyzerConfig
from repro.service import ServiceConfig, ServiceHandle, encode_video
from repro.streaming import FrameUpdate, ProvisionalEstimate
from repro.video.sequence import VideoSequence


def _frame(value=0):
    return np.full((8, 8, 3), value, dtype=np.uint8)


class TestFrameQueue:
    def test_fifo_order_and_counts(self):
        queue = FrameQueue(4)
        assert queue.put([_frame(0), _frame(1)]) == 2
        assert queue.put([_frame(2)]) == 3
        assert queue.total_put() == 3
        assert queue.size() == 3
        values = [queue.get(timeout=1.0)[0, 0, 0] for _ in range(3)]
        assert values == [0, 1, 2]

    def test_overflow_is_all_or_nothing(self):
        queue = FrameQueue(2)
        queue.put([_frame()])
        with pytest.raises(FrameQueueFull):
            queue.put([_frame(), _frame()])
        # the rejected chunk left nothing behind
        assert queue.size() == 1
        assert queue.total_put() == 1

    def test_put_after_close_raises(self):
        queue = FrameQueue(2)
        queue.close()
        queue.close()  # idempotent
        assert queue.closed
        with pytest.raises(StreamError):
            queue.put([_frame()])

    def test_get_drains_then_signals_eof(self):
        queue = FrameQueue(2)
        queue.put([_frame(5)])
        queue.close()
        assert queue.get(timeout=1.0)[0, 0, 0] == 5
        assert queue.get(timeout=1.0) is None

    def test_idle_timeout_raises(self):
        queue = FrameQueue(2)
        start = time.monotonic()
        with pytest.raises(StreamIdleTimeout):
            queue.get(timeout=0.05)
        assert time.monotonic() - start < 5.0


# ----------------------------------------------------------------------
# HTTP surface, with a scripted streaming analyzer
# ----------------------------------------------------------------------
def _request(method, url, body=None):
    """One request; returns (status, payload, headers) without raising."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"},
        method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


class _ScriptedStream:
    """Stand-in for StreamingAnalyzer driven by events, not pixels."""

    def __init__(self, owner):
        self._owner = owner
        self.frames = []

    def push_frame(self, frame):
        self.frames.append(frame)
        if self._owner.push_started is not None:
            self._owner.push_started.set()
        if self._owner.push_release is not None:
            self._owner.push_release.wait(timeout=10)
        count = len(self.frames)
        provisional = None
        if count >= 2:
            provisional = ProvisionalEstimate(
                frames_seen=count,
                takeoff_frame=0,
                landing_frame=count - 1,
                peak_frame=count // 2,
                ground_height=1.0,
                score=0.5,
            )
        return FrameUpdate(
            frame_index=count - 1,
            frames_seen=count,
            phase="tracking",
            pose_box=(0.0, 0.0, 4.0, 6.0),
            provisional=provisional,
        )

    def finish(self):
        if self._owner.error is not None:
            raise self._owner.error
        return {"stub": True, "frames": len(self.frames)}


class _ScriptedStreamAnalyzer:
    """Analyzer stub exposing both entry points the worker uses."""

    STAGES = ("segmentation", "tracking", "scoring")

    def __init__(self, error=None, push_started=None, push_release=None):
        self.config = AnalyzerConfig()
        self.error = error
        self.push_started = push_started
        self.push_release = push_release
        self.streams = []

    def open_stream(
        self, annotation=None, rng=None, instrumentation=None, cancel_token=None
    ):
        stream = _ScriptedStream(self)
        self.streams.append(stream)
        return stream

    def analyze(self, video, annotation=None, rng=None,
                instrumentation=None, cancel_token=None):
        return {"stub": True}


def _stub_handle(analyzer, jobs=None):
    config = ServiceConfig(jobs=jobs or JobsConfig())
    handle = ServiceHandle(service_config=config)
    handle._server.analyzer = analyzer
    handle.jobs.workers._serializer = lambda analysis: {
        "stub": True,
        "degraded": False,
    }
    return handle.start()


def _frames_b64(count, value=0):
    return encode_video(
        VideoSequence(np.full((count, 8, 8, 3), value, dtype=np.uint8))
    )


def _submit_stream(address, seed=0):
    return _request(
        "POST", f"{address}/v1/jobs", {"mode": "stream", "seed": seed}
    )


def _push(address, job_id, count=1, value=0):
    return _request(
        "POST",
        f"{address}/v1/jobs/{job_id}/frames",
        {"frames_npz_b64": _frames_b64(count, value)},
    )


def _poll_terminal(address, job_id, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload, _ = _request("GET", f"{address}/v1/jobs/{job_id}")
        assert status == 200
        if payload["job"]["state"] in ("succeeded", "failed", "cancelled"):
            return payload["job"]
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} never became terminal")


class TestStreamSubmit:
    def test_unknown_mode_is_400(self):
        handle = _stub_handle(_ScriptedStreamAnalyzer())
        try:
            status, payload, _ = _request(
                "POST", f"{handle.address}/v1/jobs", {"mode": "firehose"}
            )
            assert status == 400
            assert payload["error"]["type"] == "bad_mode"
        finally:
            handle.stop()

    def test_stream_submit_202_with_stream_block(self):
        handle = _stub_handle(_ScriptedStreamAnalyzer())
        try:
            status, payload, headers = _submit_stream(handle.address, seed=2)
            assert status == 202
            job = payload["job"]
            assert headers["Location"] == f"/v1/jobs/{job['id']}"
            assert job["mode"] == "stream"
            assert job["stream"]["frames_received"] == 0
            assert job["stream"]["eof"] is False
            assert job["stream"]["provisional"] is None
        finally:
            handle.stop()

    def test_push_to_batch_job_is_409(self):
        handle = _stub_handle(_ScriptedStreamAnalyzer())
        try:
            status, payload, _ = _request(
                "POST",
                f"{handle.address}/v1/jobs",
                {"video_npz_b64": _frames_b64(2), "seed": 1},
            )
            assert status == 202
            job_id = payload["job"]["id"]
            status, payload, _ = _push(handle.address, job_id)
            assert status == 409
            assert payload["error"]["type"] == "not_a_stream_job"
        finally:
            handle.stop()

    def test_push_to_unknown_job_is_404(self):
        handle = _stub_handle(_ScriptedStreamAnalyzer())
        try:
            status, payload, _ = _push(handle.address, "j99999-missing")
            assert status == 404
        finally:
            handle.stop()


class TestStreamFlow:
    def test_push_eof_succeed(self):
        analyzer = _ScriptedStreamAnalyzer()
        handle = _stub_handle(analyzer)
        try:
            _, payload, _ = _submit_stream(handle.address)
            job_id = payload["job"]["id"]

            status, payload, _ = _push(handle.address, job_id, count=3)
            assert status == 202
            assert payload["frames_received"] == 3
            assert payload["job"]["stream"]["frames_received"] == 3

            # The worker drains the queue and publishes a provisional
            # block (the scripted stream emits one from frame 2 on).
            deadline = time.monotonic() + 10
            provisional = None
            while time.monotonic() < deadline:
                _, payload, _ = _request(
                    "GET", f"{handle.address}/v1/jobs/{job_id}"
                )
                provisional = payload["job"]["stream"]["provisional"]
                if provisional and provisional.get("estimate"):
                    break
                time.sleep(0.01)
            assert provisional is not None
            assert provisional["phase"] == "tracking"
            assert provisional["estimate"]["score"] == 0.5

            status, payload, _ = _request(
                "POST", f"{handle.address}/v1/jobs/{job_id}/eof"
            )
            assert status == 202
            assert payload["job"]["stream"]["eof"] is True

            final = _poll_terminal(handle.address, job_id)
            assert final["state"] == "succeeded"
            status, payload, _ = _request(
                "GET", f"{handle.address}/v1/jobs/{job_id}/result"
            )
            assert status == 200
            assert payload["analysis"]["stub"] is True
            assert len(analyzer.streams) == 1
            assert len(analyzer.streams[0].frames) == 3
        finally:
            handle.stop()

    def test_missing_frames_field_is_400(self):
        handle = _stub_handle(_ScriptedStreamAnalyzer())
        try:
            _, payload, _ = _submit_stream(handle.address)
            job_id = payload["job"]["id"]
            status, payload, _ = _request(
                "POST", f"{handle.address}/v1/jobs/{job_id}/frames", {}
            )
            assert status == 400
            assert payload["error"]["type"] == "missing_field"
        finally:
            handle.stop()

    def test_push_after_eof_is_409(self):
        handle = _stub_handle(_ScriptedStreamAnalyzer())
        try:
            _, payload, _ = _submit_stream(handle.address)
            job_id = payload["job"]["id"]
            _push(handle.address, job_id, count=2)
            _request("POST", f"{handle.address}/v1/jobs/{job_id}/eof")
            status, payload, _ = _push(handle.address, job_id)
            assert status == 409
            assert payload["error"]["type"] in (
                "stream_closed",
                "job_finished",  # the worker may already have finished
            )
        finally:
            handle.stop()

    def test_double_eof_is_409(self):
        handle = _stub_handle(_ScriptedStreamAnalyzer())
        try:
            _, payload, _ = _submit_stream(handle.address)
            job_id = payload["job"]["id"]
            _push(handle.address, job_id, count=2)
            status, _, _ = _request(
                "POST", f"{handle.address}/v1/jobs/{job_id}/eof"
            )
            assert status == 202
            status, payload, _ = _request(
                "POST", f"{handle.address}/v1/jobs/{job_id}/eof"
            )
            assert status == 409
        finally:
            handle.stop()


class TestStreamRobustness:
    def test_idle_timeout_fails_job_without_leaking_a_slot(self):
        jobs = JobsConfig(stream_idle_timeout_seconds=0.2)
        handle = _stub_handle(_ScriptedStreamAnalyzer(), jobs=jobs)
        try:
            _, payload, _ = _submit_stream(handle.address)
            job_id = payload["job"]["id"]
            _push(handle.address, job_id, count=1)
            # Never send eof: the worker must give up on its own.
            final = _poll_terminal(handle.address, job_id)
            assert final["state"] == "failed"
            assert final["error"]["type"] == "StreamIdleTimeout"
            # The pool slot came back: no token held, next job runs.
            assert handle.jobs.workers.active() == 0
            status, payload, _ = _request(
                "POST",
                f"{handle.address}/v1/jobs",
                {"video_npz_b64": _frames_b64(2), "seed": 5},
            )
            assert status == 202
            batch = _poll_terminal(handle.address, payload["job"]["id"])
            assert batch["state"] == "succeeded"
        finally:
            handle.stop()

    def test_full_queue_answers_429_with_retry_after(self):
        started = threading.Event()
        release = threading.Event()
        jobs = JobsConfig(stream_queue_frames=2)
        handle = _stub_handle(
            _ScriptedStreamAnalyzer(
                push_started=started, push_release=release
            ),
            jobs=jobs,
        )
        try:
            _, payload, _ = _submit_stream(handle.address)
            job_id = payload["job"]["id"]
            # One frame in; wait until the worker is wedged inside
            # push_frame so the queue depth is deterministic.
            status, _, _ = _push(handle.address, job_id, count=1)
            assert status == 202
            assert started.wait(timeout=10)
            status, _, _ = _push(handle.address, job_id, count=2)
            assert status == 202  # fills the 2-deep queue
            status, payload, headers = _push(handle.address, job_id, count=1)
            assert status == 429
            assert payload["error"]["type"] == "frame_queue_full"
            assert "Retry-After" in headers
            release.set()
            _request("POST", f"{handle.address}/v1/jobs/{job_id}/eof")
            final = _poll_terminal(handle.address, job_id)
            assert final["state"] == "succeeded"
        finally:
            release.set()
            handle.stop()

    def test_cancel_mid_stream(self):
        started = threading.Event()
        release = threading.Event()
        handle = _stub_handle(
            _ScriptedStreamAnalyzer(
                push_started=started, push_release=release
            )
        )
        try:
            _, payload, _ = _submit_stream(handle.address)
            job_id = payload["job"]["id"]
            _push(handle.address, job_id, count=2)
            assert started.wait(timeout=10)
            status, _, _ = _request(
                "DELETE", f"{handle.address}/v1/jobs/{job_id}"
            )
            assert status == 202
            release.set()
            final = _poll_terminal(handle.address, job_id)
            assert final["state"] == "cancelled"
            # A cancelled stream takes no more frames.
            status, payload, _ = _push(handle.address, job_id)
            assert status == 409
        finally:
            release.set()
            handle.stop()


class TestClientStreaming:
    def test_client_stream_chunks_and_waits(self):
        analyzer = _ScriptedStreamAnalyzer()
        handle = _stub_handle(analyzer)
        try:
            client = ServiceClient(handle.address)
            video = VideoSequence(np.zeros((5, 8, 8, 3), dtype=np.uint8))
            updates = []
            analysis = client.stream(
                video, seed=4, chunk_frames=2, on_update=updates.append
            )
            assert analysis == {"stub": True, "degraded": False}
            assert len(updates) == 3  # 2 + 2 + 1 frames
            assert updates[-1]["frames_received"] == 5
            assert len(analyzer.streams[0].frames) == 5
        finally:
            handle.stop()

    def test_client_rejects_bad_chunk_size(self):
        from repro.client import ClientError

        client = ServiceClient("http://127.0.0.1:9")
        video = VideoSequence(np.zeros((2, 8, 8, 3), dtype=np.uint8))
        with pytest.raises(ClientError):
            client.stream(video, chunk_frames=0)
