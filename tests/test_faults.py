"""Tests for the fault-injection package and the chaos harness."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ReproError
from repro.faults import (
    FAULT_KINDS,
    FRAME_FAULT_KINDS,
    ChaosReport,
    FaultOutcome,
    FaultPlan,
    FaultSpec,
    apply_stage_faults,
    default_fault_grid,
    fault_kinds,
    inject_video_faults,
    run_chaos,
)
from repro.ga.engine import GAConfig
from repro.ga.temporal import TrackerConfig
from repro.model.annotation import simulate_human_annotation
from repro.model.fitness import FitnessConfig
from repro.pipeline import AnalyzerConfig, JumpAnalyzer, RobustnessConfig


def _fast_analyzer_config(**overrides):
    return AnalyzerConfig(
        tracker=TrackerConfig(
            ga=GAConfig(population_size=24, max_generations=8, patience=4),
            fitness=FitnessConfig(max_points=400),
        ),
        **overrides,
    )


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="drop_frame"):
            FaultSpec(kind="meteor_strike")

    @pytest.mark.parametrize(
        "kwargs",
        [{"frame": -2}, {"magnitude": 0.0}, {"times": 0}],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="noise_burst", **kwargs)

    def test_resolve_frame_middle(self):
        assert FaultSpec(kind="noise_burst").resolve_frame(21) == 10
        assert FaultSpec(kind="noise_burst", frame=3).resolve_frame(21) == 3

    def test_resolve_frame_out_of_range(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="noise_burst", frame=30).resolve_frame(10)

    def test_classification(self):
        assert FaultSpec(kind="drop_frame").is_frame_fault
        assert FaultSpec(kind="stage_exception").is_stage_fault
        assert set(fault_kinds()) == set(FRAME_FAULT_KINDS)


class TestFaultPlan:
    def test_filters(self):
        plan = default_fault_grid(include_delay=True)
        assert len(plan) == len(FAULT_KINDS)
        assert {s.kind for s in plan.frame_faults()} == set(FRAME_FAULT_KINDS)
        assert len(plan.stage_faults()) == 2

    def test_describe(self):
        plan = FaultPlan((FaultSpec(kind="drop_frame", frame=4),))
        assert "drop_frame" in plan.describe()
        assert FaultPlan().describe() == "empty fault plan"


class TestInjectors:
    def test_deterministic(self, short_jump):
        plan = FaultPlan((FaultSpec(kind="noise_burst", seed=9),))
        once = inject_video_faults(short_jump.video, plan)
        twice = inject_video_faults(short_jump.video, plan)
        assert np.array_equal(once.frames, twice.frames)

    def test_drop_frame_shortens(self, short_jump):
        plan = FaultPlan((FaultSpec(kind="drop_frame"),))
        faulted = inject_video_faults(short_jump.video, plan)
        assert len(faulted) == len(short_jump.video) - 1

    def test_drop_frame_needs_two_frames(self, short_jump):
        one = short_jump.video.clip(0, 1)
        with pytest.raises(ConfigurationError):
            inject_video_faults(one, FaultPlan((FaultSpec(kind="drop_frame"),)))

    @pytest.mark.parametrize(
        "kind",
        ["blank_silhouette", "noise_burst", "occlude_band", "corrupt_dtype"],
    )
    def test_only_target_frame_perturbed(self, short_jump, kind):
        target = 4
        plan = FaultPlan((FaultSpec(kind=kind, frame=target),))
        faulted = inject_video_faults(short_jump.video, plan)
        clean = short_jump.video.frames
        assert not np.array_equal(faulted.frames[target], clean[target])
        for index in range(len(short_jump.video)):
            if index != target:
                assert np.array_equal(faulted.frames[index], clean[index])
        assert faulted.frames.min() >= 0.0
        assert faulted.frames.max() <= 1.0

    def test_source_video_untouched(self, short_jump):
        before = short_jump.video.frames.copy()
        inject_video_faults(
            short_jump.video, FaultPlan((FaultSpec(kind="noise_burst"),))
        )
        assert np.array_equal(short_jump.video.frames, before)


class TestStageFaults:
    def test_unknown_stage_rejected(self):
        analyzer = JumpAnalyzer(_fast_analyzer_config())
        plan = FaultPlan((FaultSpec(kind="stage_exception", stage="nope"),))
        with pytest.raises(ConfigurationError, match="unknown stage"):
            apply_stage_faults(analyzer, plan)

    def test_exception_absorbed_by_retry(self, short_jump):
        annotation = simulate_human_annotation(
            short_jump.motion.poses[0],
            short_jump.dims,
            mask=short_jump.person_masks[0],
            rng=np.random.default_rng(0),
        )
        analyzer = JumpAnalyzer(_fast_analyzer_config())
        plan = FaultPlan(
            (FaultSpec(kind="stage_exception", stage="tracking", times=1),)
        )
        analysis = apply_stage_faults(analyzer, plan).analyze(
            short_jump.video, annotation=annotation
        )
        assert analysis.trace.counter("runtime.retries") == 1
        assert len(analysis.poses) == len(short_jump.video)

    def test_exception_fatal_when_strict(self, short_jump):
        annotation = simulate_human_annotation(
            short_jump.motion.poses[0],
            short_jump.dims,
            mask=short_jump.person_masks[0],
            rng=np.random.default_rng(0),
        )
        analyzer = JumpAnalyzer(
            _fast_analyzer_config(robustness=RobustnessConfig(enabled=False))
        )
        plan = FaultPlan(
            (FaultSpec(kind="stage_exception", stage="tracking", times=1),)
        )
        with pytest.raises(ReproError, match="injected fault"):
            apply_stage_faults(analyzer, plan).analyze(
                short_jump.video, annotation=annotation
            )


class TestChaosReport:
    def _outcome(self, kind="noise_burst", survived=True, degraded=False):
        return FaultOutcome(
            spec=FaultSpec(kind=kind),
            survived=survived,
            degraded=degraded,
            unhealthy_frames=(4,) if degraded else (),
        )

    def test_rates(self):
        report = ChaosReport(
            (
                self._outcome(survived=True),
                self._outcome(survived=True, degraded=True),
                self._outcome(survived=False),
            )
        )
        assert report.survival_rate == pytest.approx(2 / 3)
        assert report.degraded_rate == pytest.approx(1 / 2)
        assert len(report.failures()) == 1

    def test_empty_report_survives(self):
        assert ChaosReport().survival_rate == 1.0
        assert ChaosReport().degraded_rate == 0.0

    def test_render_and_serialise(self):
        report = ChaosReport(
            (self._outcome(survived=True, degraded=True),)
        )
        table = report.render_table()
        assert "degraded" in table and "frames [4]" in table
        data = report.to_dict()
        assert data["num_faults"] == 1
        assert data["outcomes"][0]["verdict"] == "degraded"


class TestRunChaos:
    def test_single_fault_survival(self, short_jump):
        annotation = simulate_human_annotation(
            short_jump.motion.poses[0],
            short_jump.dims,
            mask=short_jump.person_masks[0],
            rng=np.random.default_rng(0),
        )
        plan = FaultPlan((FaultSpec(kind="blank_silhouette"),))
        report = run_chaos(
            short_jump.video,
            annotation=annotation,
            config=_fast_analyzer_config(),
            plan=plan,
        )
        (outcome,) = report.outcomes
        assert outcome.survived
        assert outcome.degraded
        # The diagnostics name exactly the faulted frame.
        assert outcome.unhealthy_frames == (
            FaultSpec(kind="blank_silhouette").resolve_frame(
                len(short_jump.video)
            ),
        )

    def test_bad_plan_raises_instead_of_scoring_survival(self, short_jump):
        """A harness misconfiguration (fault frame out of range) must
        propagate, not be recorded as a pipeline non-survival that
        silently drags down the chaos gate's survival rate."""
        plan = FaultPlan((FaultSpec(kind="blank_silhouette", frame=10_000),))
        with pytest.raises(ConfigurationError, match="frame 10000"):
            run_chaos(
                short_jump.video, config=_fast_analyzer_config(), plan=plan
            )

    def test_failures_are_recorded_not_raised(self, short_jump):
        annotation = simulate_human_annotation(
            short_jump.motion.poses[0],
            short_jump.dims,
            mask=short_jump.person_masks[0],
            rng=np.random.default_rng(0),
        )
        strict = _fast_analyzer_config(
            robustness=RobustnessConfig(enabled=False)
        )
        plan = FaultPlan(
            (FaultSpec(kind="stage_exception", stage="tracking"),)
        )
        report = run_chaos(
            short_jump.video,
            annotation=annotation,
            config=strict,
            plan=plan,
        )
        (outcome,) = report.outcomes
        assert not outcome.survived
        assert outcome.error_type == "ReproError"
        assert report.survival_rate == 0.0


class TestOpsFaultOutcomeShmGate:
    """``leaked_shm`` gates the ops verdict exactly like leaked slots."""

    def test_leaked_shm_downgrades_verdict(self):
        from repro.faults import OpsChaosReport, OpsFaultOutcome

        clean = OpsFaultOutcome(name="kill_worker_mid_job", survived=True)
        leaky = OpsFaultOutcome(
            name="drain_under_load", survived=True, leaked_shm=2
        )
        assert clean.verdict == "ok"
        assert leaky.verdict == "leaked"
        assert leaky.to_dict()["leaked_shm"] == 2
        report = OpsChaosReport((clean, leaky))
        assert report.survival_rate == 0.5
        assert report.failures() == (leaky,)
        assert "2 leaked shm segment(s)" in report.render_table()

    def test_run_ops_chaos_snapshots_shm(self, monkeypatch, tmp_path):
        """A scenario that leaves a segment behind is flagged as a leak."""
        from repro.faults import ops as ops_module
        from repro.perf.shm import SharedFrameArena

        stray = {}

        def leaky_scenario(video, annotation, config, seed, state):
            arena = SharedFrameArena.create(np.zeros((1, 2, 2)))
            stray["arena"] = arena  # deliberately neither closed nor unlinked
            return ops_module.OpsFaultOutcome(
                name="kill_worker_mid_job", survived=True
            )

        monkeypatch.setattr(
            ops_module, "_scenario_kill_mid_job", leaky_scenario
        )
        for name in (
            "_scenario_restart_mid_stream",
            "_scenario_wedge_past_watchdog",
            "_scenario_drain_under_load",
            "_scenario_breaker_trip_recover",
        ):
            monkeypatch.setattr(
                ops_module,
                name,
                lambda video, annotation, config, seed, state, _n=name: (
                    ops_module.OpsFaultOutcome(
                        name=_n.removeprefix("_scenario_"), survived=True
                    )
                ),
            )
        try:
            report = ops_module.run_ops_chaos(
                video=None, state_root=str(tmp_path)
            )
        finally:
            arena = stray.pop("arena")
            arena.close()
            arena.unlink()
        leaked = {o.name: o.leaked_shm for o in report.outcomes}
        assert leaked["kill_worker_mid_job"] == 1
        assert all(
            count == 0
            for name, count in leaked.items()
            if name != "kill_worker_mid_job"
        )
        assert report.survival_rate == pytest.approx(0.8)
