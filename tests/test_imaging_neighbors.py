"""Tests for neighbour counting and the paper's Step 3/4 pixel rules."""

import numpy as np
import pytest

from repro.imaging.neighbors import (
    count_neighbors,
    fill_single_pixel_holes,
    remove_noise_pixels,
    shift,
)


class TestShift:
    def test_shift_down_right(self):
        mask = np.zeros((3, 3), dtype=bool)
        mask[0, 0] = True
        out = shift(mask, 1, 1)
        assert out[1, 1] and out.sum() == 1

    def test_shift_out_of_frame(self):
        mask = np.ones((2, 2), dtype=bool)
        out = shift(mask, 5, 0)
        assert not out.any()

    def test_fill_value(self):
        mask = np.zeros((2, 2), dtype=bool)
        out = shift(mask, 1, 0, fill=True)
        assert out[0].all() and not out[1].any()


class TestCountNeighbors:
    def test_center_of_full_block(self):
        mask = np.ones((3, 3), dtype=bool)
        counts = count_neighbors(mask, connectivity=8)
        assert counts[1, 1] == 8
        assert counts[0, 0] == 3

    def test_connectivity_4(self):
        mask = np.ones((3, 3), dtype=bool)
        counts = count_neighbors(mask, connectivity=4)
        assert counts[1, 1] == 4
        assert counts[0, 0] == 2

    def test_outside_is_set(self):
        mask = np.ones((3, 3), dtype=bool)
        counts = count_neighbors(mask, connectivity=8, outside_is_set=True)
        assert counts[0, 0] == 8

    def test_invalid_connectivity(self):
        with pytest.raises(ValueError):
            count_neighbors(np.zeros((2, 2), dtype=bool), connectivity=6)


class TestRemoveNoisePixels:
    def test_isolated_pixel_removed(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[2, 2] = True
        assert not remove_noise_pixels(mask, min_neighbors=0).any()

    def test_solid_block_interior_survives(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[1:5, 1:5] = True
        out = remove_noise_pixels(mask, min_neighbors=3)
        assert out[2, 2] and out[2, 3]
        # corners of the block have only 3 neighbours -> removed at >3
        assert not out[1, 1]

    def test_three_pixel_strip_survives_at_3(self):
        # A 3-wide horizontal strip models a thin limb.
        mask = np.zeros((7, 9), dtype=bool)
        mask[2:5, 1:8] = True
        out = remove_noise_pixels(mask, min_neighbors=3)
        # mid-strip edge rows have 5 neighbours -> kept
        assert out[2, 4] and out[4, 4] and out[3, 4]

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            remove_noise_pixels(np.zeros((2, 2), dtype=bool), min_neighbors=9)


class TestFillSinglePixelHoles:
    def test_single_hole_filled(self):
        mask = np.ones((3, 3), dtype=bool)
        mask[1, 1] = False
        out = fill_single_pixel_holes(mask)
        assert out.all()

    def test_edge_pixel_not_filled(self):
        # A background pixel on the border has at most 3 edge neighbours.
        mask = np.ones((3, 3), dtype=bool)
        mask[0, 1] = False
        out = fill_single_pixel_holes(mask)
        assert not out[0, 1]

    def test_two_pixel_hole_needs_two_passes(self):
        mask = np.ones((4, 5), dtype=bool)
        mask[1, 2] = False
        mask[2, 2] = False
        one = fill_single_pixel_holes(mask, iterations=1)
        assert not one.all()  # first pass cannot fill either pixel
        two = fill_single_pixel_holes(mask, iterations=2)
        assert not two.all()  # the pair is stable under the 4-rule
        # but a vertical pair inside a big blob: top fills when bottom set
        big = np.ones((6, 6), dtype=bool)
        big[2, 3] = False
        assert fill_single_pixel_holes(big, iterations=1).all()

    def test_input_not_modified(self):
        mask = np.ones((3, 3), dtype=bool)
        mask[1, 1] = False
        fill_single_pixel_holes(mask)
        assert not mask[1, 1]
