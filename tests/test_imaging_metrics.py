"""Tests for segmentation metrics."""

import numpy as np
import pytest

from repro.imaging.metrics import (
    confusion,
    f1_score,
    iou,
    mean_absolute_error,
    rmse,
    shadow_detection_rates,
)


def _masks():
    truth = np.zeros((4, 4), dtype=bool)
    truth[1:3, 1:3] = True  # 4 px
    pred = np.zeros((4, 4), dtype=bool)
    pred[1:3, 1:4] = True  # 6 px, 4 overlap
    return pred, truth


class TestConfusion:
    def test_counts(self):
        pred, truth = _masks()
        c = confusion(pred, truth)
        assert c.true_positive == 4
        assert c.false_positive == 2
        assert c.false_negative == 0
        assert c.true_negative == 10

    def test_derived_metrics(self):
        pred, truth = _masks()
        c = confusion(pred, truth)
        assert c.precision == pytest.approx(4 / 6)
        assert c.recall == 1.0
        assert c.iou == pytest.approx(4 / 6)
        assert c.f1 == pytest.approx(2 * (4 / 6) / (1 + 4 / 6))
        assert c.accuracy == pytest.approx(14 / 16)

    def test_perfect_match(self):
        mask = np.eye(4, dtype=bool)
        c = confusion(mask, mask)
        assert c.iou == 1.0 and c.f1 == 1.0

    def test_empty_masks(self):
        empty = np.zeros((3, 3), dtype=bool)
        c = confusion(empty, empty)
        assert c.iou == 1.0
        assert c.precision == 1.0
        assert c.recall == 1.0

    def test_disjoint(self):
        a = np.zeros((3, 3), dtype=bool); a[0, 0] = True
        b = np.zeros((3, 3), dtype=bool); b[2, 2] = True
        assert iou(a, b) == 0.0
        assert f1_score(a, b) == 0.0


class TestShadowRates:
    def test_rates(self):
        shadow_true = np.zeros((4, 4), dtype=bool)
        shadow_true[3, :] = True  # 4 shadow px
        person_true = np.zeros((4, 4), dtype=bool)
        person_true[0:2, :] = True  # 8 person px
        predicted = np.zeros((4, 4), dtype=bool)
        predicted[3, 0:2] = True  # detects half the shadow
        predicted[0, 0] = True  # eats one person pixel
        detection, discrimination = shadow_detection_rates(
            predicted, shadow_true, person_true
        )
        assert detection == pytest.approx(0.5)
        assert discrimination == pytest.approx(7 / 8)

    def test_empty_truths(self):
        empty = np.zeros((2, 2), dtype=bool)
        detection, discrimination = shadow_detection_rates(empty, empty, empty)
        assert detection == 1.0 and discrimination == 1.0


class TestImageErrors:
    def test_rmse_and_mae(self):
        a = np.zeros((2, 2))
        b = np.full((2, 2), 0.5)
        assert mean_absolute_error(a, b) == pytest.approx(0.5)
        assert rmse(a, b) == pytest.approx(0.5)

    def test_rmse_dominated_by_outliers(self):
        a = np.zeros(16).reshape(4, 4)
        b = a.copy()
        b[0, 0] = 1.0
        assert rmse(a, b) > mean_absolute_error(a, b)
