"""Tests for the temporal pose tracker (reduced budgets for speed)."""

import numpy as np
import pytest

from repro.errors import TrackingError
from repro.ga.engine import GAConfig
from repro.ga.temporal import (
    TemporalPoseTracker,
    TrackerConfig,
    extrapolate_pose,
)
from repro.model.annotation import simulate_human_annotation
from repro.model.fitness import FitnessConfig
from repro.model.pose import StickPose, mean_joint_error


def _fast_config(**overrides):
    defaults = dict(
        ga=GAConfig(population_size=30, max_generations=10, patience=5),
        fitness=FitnessConfig(max_points=500),
        containment_margin=1,
        min_inside_fraction=0.95,
        containment_samples=7,
    )
    defaults.update(overrides)
    return TrackerConfig(**defaults)


class TestExtrapolation:
    def test_constant_velocity(self):
        a = StickPose.standing(10.0, 20.0)
        b = StickPose.standing(14.0, 20.0).with_angle(0, 10.0)
        predicted = extrapolate_pose(a, b, damping=1.0)
        assert predicted.x0 == pytest.approx(18.0)
        assert predicted.angle(0) == pytest.approx(20.0)

    def test_damping(self):
        a = StickPose.standing(0.0, 0.0)
        b = StickPose.standing(10.0, 0.0)
        predicted = extrapolate_pose(a, b, damping=0.5)
        assert predicted.x0 == pytest.approx(15.0)

    def test_angle_step_clamped(self):
        a = StickPose.standing(0.0, 0.0)
        b = StickPose.standing(0.0, 0.0).with_angle(0, 170.0)
        predicted = extrapolate_pose(a, b, damping=1.0, max_angle_step=30.0)
        assert predicted.angle(0) == pytest.approx(200.0)

    def test_wraps(self):
        a = StickPose.standing(0.0, 0.0).with_angle(0, 350.0)
        b = StickPose.standing(0.0, 0.0).with_angle(0, 355.0)
        predicted = extrapolate_pose(a, b, damping=1.0)
        assert 0.0 <= predicted.angle(0) < 360.0


class TestTracking:
    @pytest.fixture(scope="class")
    def tracked(self, jump):
        silhouettes = list(jump.person_masks)  # perfect silhouettes
        annotation = simulate_human_annotation(
            jump.motion.poses[0],
            jump.dims,
            mask=silhouettes[0],
            rng=np.random.default_rng(0),
        )
        tracker = TemporalPoseTracker(annotation.dims, _fast_config())
        result = tracker.track(
            silhouettes, annotation.pose, rng=np.random.default_rng(1)
        )
        return jump, result

    def test_tracks_every_frame(self, tracked):
        jump, result = tracked
        assert len(result.poses) == jump.num_frames
        assert len(result.records) == jump.num_frames - 1

    def test_joint_error_bounded(self, tracked):
        jump, result = tracked
        errors = [
            mean_joint_error(result.poses[k], jump.motion.poses[k], jump.dims)
            for k in range(1, jump.num_frames)
        ]
        assert float(np.mean(errors)) < 8.0

    def test_fitness_reported_raw(self, tracked):
        _, result = tracked
        for record in result.records:
            assert 0.0 < record.fitness < 1.0

    def test_mean_generation_of_best_small(self, tracked):
        # The paper's headline: with temporal seeding the best model
        # appears within a few generations.
        _, result = tracked
        assert result.mean_generation_of_best < 8.0

    def test_empty_silhouette_rejected(self, jump):
        annotation = simulate_human_annotation(
            jump.motion.poses[0], jump.dims, rng=np.random.default_rng(0)
        )
        tracker = TemporalPoseTracker(annotation.dims, _fast_config())
        empty = np.zeros_like(jump.person_masks[0])
        with pytest.raises(TrackingError):
            tracker.estimate_frame(empty, annotation.pose, np.random.default_rng(0))

    def test_no_silhouettes_rejected(self, jump):
        tracker = TemporalPoseTracker(jump.dims, _fast_config())
        with pytest.raises(TrackingError):
            tracker.track([], StickPose.standing(0, 0))


class TestConfigurationVariants:
    def test_paper_faithful_mode_runs(self, jump):
        """No extrapolation, reseeding, rescue, polish or prior."""
        silhouettes = list(jump.person_masks[:6])
        annotation = simulate_human_annotation(
            jump.motion.poses[0], jump.dims, mask=silhouettes[0],
            rng=np.random.default_rng(0),
        )
        config = _fast_config(
            extrapolate=False,
            reseed_fraction=0.0,
            temporal_weight=0.0,
            limb_rescue=False,
            polish=False,
        )
        tracker = TemporalPoseTracker(annotation.dims, config)
        result = tracker.track(
            silhouettes, annotation.pose, rng=np.random.default_rng(2)
        )
        assert len(result.poses) == 6
