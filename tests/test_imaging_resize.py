"""Tests for image resizing."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.resize import (
    resize_bilinear,
    resize_mask,
    resize_nearest,
    resize_video_frames,
)


class TestNearest:
    def test_identity(self, rng):
        image = rng.random((8, 10))
        assert np.array_equal(resize_nearest(image, 8, 10), image)

    def test_upscale_2x_repeats(self):
        image = np.arange(4.0).reshape(2, 2)
        out = resize_nearest(image, 4, 4)
        assert out.shape == (4, 4)
        assert out[0, 0] == image[0, 0] and out[3, 3] == image[1, 1]

    def test_mask_stays_boolean(self):
        mask = np.eye(6, dtype=bool)
        out = resize_mask(mask, 12, 12)
        assert out.dtype == bool
        assert out.shape == (12, 12)

    def test_bad_target(self):
        with pytest.raises(ImageError):
            resize_nearest(np.zeros((4, 4)), 0, 5)


class TestBilinear:
    def test_identity(self, rng):
        image = rng.random((9, 7))
        assert np.allclose(resize_bilinear(image, 9, 7), image)

    def test_constant_preserved(self):
        image = np.full((5, 5, 3), 0.42)
        out = resize_bilinear(image, 13, 9)
        assert np.allclose(out, 0.42)

    def test_gradient_interpolated(self):
        image = np.linspace(0, 1, 10)[None, :].repeat(4, axis=0)
        out = resize_bilinear(image, 4, 19)
        assert (np.diff(out[0]) >= -1e-9).all()  # still monotone
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_downscale_averages(self):
        image = np.zeros((4, 4))
        image[:2] = 1.0
        out = resize_bilinear(image, 2, 2)
        assert out[0].mean() > out[1].mean()

    def test_range_preserved(self, rng):
        image = rng.random((16, 16, 3))
        out = resize_bilinear(image, 7, 23)
        assert out.min() >= image.min() - 1e-9
        assert out.max() <= image.max() + 1e-9


class TestVideoResize:
    def test_stack(self, rng):
        frames = rng.random((3, 8, 8, 3))
        out = resize_video_frames(frames, 4, 12)
        assert out.shape == (3, 4, 12, 3)

    def test_shape_validation(self):
        with pytest.raises(ImageError):
            resize_video_frames(np.zeros((8, 8, 3)), 4, 4)
