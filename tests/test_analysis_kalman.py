"""Tests for the constant-velocity Kalman smoother."""

import numpy as np
import pytest

from repro.analysis.kalman import KalmanConfig, kalman_smooth
from repro.analysis.trajectory import PoseTrajectory
from repro.errors import ScoringError
from repro.model.pose import StickPose


def _noisy_trajectory(rng, n=30, noise=6.0):
    t = np.linspace(0, 1, n)
    clean = 120 + 60 * np.sin(2 * np.pi * t)  # smooth angle signal
    poses = [
        StickPose.standing(10 * ti, 40.0).with_angle(0, c + rng.normal(0, noise))
        for ti, c in zip(t, clean)
    ]
    return PoseTrajectory.from_poses(poses), clean


class TestConfig:
    def test_validation(self):
        with pytest.raises(ScoringError):
            KalmanConfig(process_sigma=0.0)
        with pytest.raises(ScoringError):
            KalmanConfig(measurement_sigma=-1.0)


class TestSmoothing:
    def test_reduces_noise(self, rng):
        trajectory, clean = _noisy_trajectory(rng)
        smoothed = kalman_smooth(trajectory)
        raw_err = np.abs(trajectory.angles[:, 0] - clean).mean()
        smooth_err = np.abs(smoothed.angles[:, 0] - clean).mean()
        assert smooth_err < raw_err

    def test_preserves_clean_signal(self):
        n = 25
        t = np.arange(n, dtype=float)
        poses = [StickPose.standing(2.0 * ti, 40.0).with_angle(0, 100 + 2 * ti) for ti in t]
        trajectory = PoseTrajectory.from_poses(poses)
        smoothed = kalman_smooth(trajectory)
        # a constant-velocity signal is in the model class: near-exact
        assert np.abs(smoothed.angles[:, 0] - trajectory.angles[:, 0]).max() < 1.5
        assert np.abs(smoothed.centers[:, 0] - trajectory.centers[:, 0]).max() < 1.0

    def test_shapes_preserved(self, rng):
        trajectory, _ = _noisy_trajectory(rng, n=12)
        smoothed = kalman_smooth(trajectory)
        assert smoothed.angles.shape == trajectory.angles.shape
        assert smoothed.centers.shape == trajectory.centers.shape

    def test_short_track_passthrough(self):
        poses = [StickPose.standing(0, 0), StickPose.standing(1, 0)]
        trajectory = PoseTrajectory.from_poses(poses)
        smoothed = kalman_smooth(trajectory)
        assert np.allclose(smoothed.angles, trajectory.angles)

    def test_lag_bounded_on_step(self, rng):
        # A velocity step (takeoff) must be followed within a few frames.
        angles = np.concatenate([np.full(10, 100.0), 100 + 8 * np.arange(10)])
        poses = [StickPose.standing(0, 0).with_angle(0, a) for a in angles]
        smoothed = kalman_smooth(PoseTrajectory.from_poses(poses))
        assert abs(smoothed.angles[-1, 0] - angles[-1]) < 6.0


class TestEngineSelectionModes:
    """Tournament selection option of the GA engine."""

    def test_tournament_runs_and_optimises(self, rng):
        from repro.ga.engine import GAConfig, GeneticAlgorithm
        from repro.model.pose import GENES

        target = np.full(GENES, 10.0)

        def fitness(genes):
            return ((np.atleast_2d(genes) - target) ** 2).sum(axis=1)

        initial = rng.uniform(0, 30, (20, GENES))
        config = GAConfig(
            population_size=20,
            max_generations=15,
            selection="tournament",
            tournament_size=3,
        )
        result = GeneticAlgorithm(config).run(initial, fitness, rng=rng)
        assert result.best_fitness < fitness(initial).min()

    def test_selection_validation(self):
        from repro.errors import ConfigurationError
        from repro.ga.engine import GAConfig

        with pytest.raises(ConfigurationError):
            GAConfig(selection="roulette")
        with pytest.raises(ConfigurationError):
            GAConfig(tournament_size=1)
