"""Tests for geometry kernels (angles, distances, coordinate frames)."""

import numpy as np
import pytest

from repro.model.geometry import (
    angle_difference,
    direction,
    image_to_world,
    mask_points_world,
    points_to_segments_distance,
    sample_segment_points,
    world_to_image,
    wrap_angle,
)


class TestDirection:
    def test_cardinal_directions(self):
        assert np.allclose(direction(0.0), (0.0, 1.0))  # up
        assert np.allclose(direction(90.0), (1.0, 0.0))  # +x (jump direction)
        assert np.allclose(direction(180.0), (0.0, -1.0), atol=1e-12)  # down
        assert np.allclose(direction(270.0), (-1.0, 0.0), atol=1e-12)  # -x

    def test_batch(self):
        out = direction(np.array([0.0, 90.0]))
        assert out.shape == (2, 2)

    def test_unit_norm(self, rng):
        angles = rng.uniform(0, 360, 100)
        norms = np.linalg.norm(direction(angles), axis=-1)
        assert np.allclose(norms, 1.0)


class TestAngles:
    def test_wrap(self):
        assert wrap_angle(365.0) == pytest.approx(5.0)
        assert wrap_angle(-10.0) == pytest.approx(350.0)
        assert wrap_angle(720.0) == pytest.approx(0.0)

    def test_difference_shortest_arc(self):
        assert angle_difference(10.0, 350.0) == pytest.approx(20.0)
        assert angle_difference(350.0, 10.0) == pytest.approx(-20.0)
        assert angle_difference(90.0, 90.0) == 0.0

    def test_difference_range(self, rng):
        a = rng.uniform(-720, 720, 200)
        b = rng.uniform(-720, 720, 200)
        diff = angle_difference(a, b)
        assert (diff > -180).all() and (diff <= 180).all()

    def test_half_turn_positive(self):
        assert angle_difference(180.0, 0.0) == pytest.approx(180.0)
        assert angle_difference(0.0, 180.0) == pytest.approx(180.0)


class TestPointSegmentDistance:
    def test_point_on_segment(self):
        points = np.array([[0.5, 0.0]])
        segments = np.array([[[0.0, 0.0], [1.0, 0.0]]])
        assert points_to_segments_distance(points, segments)[0, 0] == 0.0

    def test_perpendicular(self):
        points = np.array([[0.5, 2.0]])
        segments = np.array([[[0.0, 0.0], [1.0, 0.0]]])
        assert points_to_segments_distance(points, segments)[0, 0] == pytest.approx(2.0)

    def test_beyond_endpoint(self):
        points = np.array([[3.0, 4.0]])
        segments = np.array([[[0.0, 0.0], [0.0, 0.0]]])  # degenerate
        assert points_to_segments_distance(points, segments)[0, 0] == pytest.approx(5.0)

    def test_clamps_to_endpoints(self):
        points = np.array([[-1.0, 1.0]])
        segments = np.array([[[0.0, 0.0], [5.0, 0.0]]])
        assert points_to_segments_distance(points, segments)[0, 0] == pytest.approx(
            np.sqrt(2.0)
        )

    def test_shapes(self, rng):
        points = rng.random((7, 2))
        segments = rng.random((3, 2, 2))
        out = points_to_segments_distance(points, segments)
        assert out.shape == (7, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            points_to_segments_distance(np.zeros((3, 3)), np.zeros((1, 2, 2)))
        with pytest.raises(ValueError):
            points_to_segments_distance(np.zeros((3, 2)), np.zeros((1, 2, 3)))


class TestSampling:
    def test_endpoint_inclusion(self):
        segments = np.array([[[0.0, 0.0], [4.0, 0.0]]])
        pts = sample_segment_points(segments, 5)
        assert pts.shape == (5, 2)
        assert np.allclose(pts[0], (0, 0)) and np.allclose(pts[-1], (4, 0))

    def test_single_sample_is_midpoint(self):
        segments = np.array([[[0.0, 0.0], [4.0, 2.0]]])
        pts = sample_segment_points(segments, 1)
        assert np.allclose(pts[0], (2.0, 1.0))


class TestCoordinateFrames:
    def test_world_image_roundtrip(self, rng):
        pts = rng.random((10, 2)) * 50
        back = image_to_world(world_to_image(pts, 120), 120)
        assert np.allclose(back, pts)

    def test_origin_convention(self):
        # world (0, 0) is the bottom-left pixel -> image row H-1, col 0
        rc = world_to_image(np.array([0.0, 0.0]), 120)
        assert np.allclose(rc, (119.0, 0.0))

    def test_mask_points_world(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[4, 0] = True  # bottom-left
        mask[0, 4] = True  # top-right
        pts = mask_points_world(mask)
        assert {tuple(p) for p in pts} == {(0.0, 0.0), (4.0, 4.0)}
