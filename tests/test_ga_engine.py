"""Tests for the elitist GA engine on synthetic objectives."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ga.engine import GAConfig, GeneticAlgorithm
from repro.ga.operators import OperatorConfig
from repro.model.pose import GENES


def _sphere(target):
    def fitness(genes):
        genes = np.atleast_2d(genes)
        return ((genes - target) ** 2).sum(axis=1)

    return fitness


class TestConfig:
    def test_elite_count(self):
        assert GAConfig(population_size=60, elite_fraction=0.1).elite_count == 6
        assert GAConfig(population_size=10, elite_fraction=0.01).elite_count == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GAConfig(population_size=2)
        with pytest.raises(ConfigurationError):
            GAConfig(elite_fraction=0.0)
        with pytest.raises(ConfigurationError):
            GAConfig(selection_pressure=3.0)
        with pytest.raises(ConfigurationError):
            GAConfig(patience=0)


class TestOptimisation:
    def test_improves_on_sphere(self, rng):
        target = np.full(GENES, 30.0)
        initial = rng.uniform(0, 60, (40, GENES))
        config = GAConfig(
            population_size=40,
            max_generations=40,
            patience=None,
            operators=OperatorConfig(
                crossover_rate=0.3, mutation_rate=0.3, angle_sigma=5.0
            ),
        )
        result = GeneticAlgorithm(config).run(initial, _sphere(target), rng=rng)
        initial_best = _sphere(target)(initial).min()
        assert result.best_fitness < initial_best * 0.5

    def test_best_never_worsens(self, rng):
        target = np.zeros(GENES)
        initial = rng.uniform(0, 100, (20, GENES))
        result = GeneticAlgorithm(GAConfig(population_size=20, max_generations=20)).run(
            initial, _sphere(target), rng=rng
        )
        curve = result.fitness_curve()
        assert (np.diff(curve) <= 1e-12).all()

    def test_history_and_evaluations(self, rng):
        initial = rng.uniform(0, 10, (10, GENES))
        config = GAConfig(
            population_size=10, max_generations=5, patience=None, incremental=True
        )
        result = GeneticAlgorithm(config).run(initial, _sphere(np.zeros(GENES)), rng=rng)
        assert result.generations == 6  # gen 0 + 5
        # Incremental evaluation skips the carried elite each generation:
        # 10 initial + 5 generations x 9 fresh offspring (elite_count=1).
        assert result.total_evaluations == 10 + 5 * 9

    def test_full_reevaluation_counts(self, rng):
        initial = rng.uniform(0, 10, (10, GENES))
        config = GAConfig(
            population_size=10, max_generations=5, patience=None, incremental=False
        )
        result = GeneticAlgorithm(config).run(initial, _sphere(np.zeros(GENES)), rng=rng)
        assert result.total_evaluations == 10 * 6

    def test_incremental_matches_full_reevaluation(self):
        """The satellite fix: carrying elite fitness is trajectory-exact."""
        rng_a = np.random.default_rng(11)
        initial = rng_a.uniform(0, 10, (12, GENES))
        fitness = _sphere(np.full(GENES, 3.0))

        def run(incremental):
            config = GAConfig(
                population_size=12, max_generations=8, patience=None,
                incremental=incremental,
            )
            return GeneticAlgorithm(config).run(
                initial, fitness, rng=np.random.default_rng(5)
            )

        fast, slow = run(True), run(False)
        assert np.array_equal(fast.best_genes, slow.best_genes)
        assert fast.best_fitness == slow.best_fitness
        assert [s.best_fitness for s in fast.history] == [
            s.best_fitness for s in slow.history
        ]
        assert [s.mean_fitness for s in fast.history] == [
            s.mean_fitness for s in slow.history
        ]
        assert fast.total_evaluations < slow.total_evaluations

    def test_target_fitness_stops_early(self, rng):
        initial = np.zeros((10, GENES))
        config = GAConfig(population_size=10, max_generations=50, target_fitness=1.0)
        result = GeneticAlgorithm(config).run(initial, _sphere(np.zeros(GENES)), rng=rng)
        assert result.generations == 1  # initial population already optimal

    def test_patience_stops(self, rng):
        initial = np.zeros((10, GENES))  # already optimal, cannot improve
        config = GAConfig(population_size=10, max_generations=100, patience=3)
        result = GeneticAlgorithm(config).run(initial, _sphere(np.zeros(GENES)), rng=rng)
        assert result.generations <= 6

    def test_population_resized(self, rng):
        initial = rng.uniform(0, 10, (3, GENES))  # smaller than configured
        config = GAConfig(population_size=12, max_generations=3)
        result = GeneticAlgorithm(config).run(initial, _sphere(np.zeros(GENES)), rng=rng)
        assert result.history[0].evaluations == 12

    def test_validity_rejection_counts(self, rng):
        initial = rng.uniform(0, 10, (10, GENES))

        def never_valid(genes):
            return np.zeros(np.atleast_2d(genes).shape[0], dtype=bool)

        config = GAConfig(population_size=10, max_generations=3, patience=None,
                          offspring_attempts=2)
        result = GeneticAlgorithm(config).run(
            initial, _sphere(np.zeros(GENES)), validity_fn=never_valid, rng=rng
        )
        assert result.rejected_offspring > 0

    def test_deterministic_given_rng(self):
        initial = np.random.default_rng(0).uniform(0, 10, (15, GENES))
        config = GAConfig(population_size=15, max_generations=10)
        r1 = GeneticAlgorithm(config).run(
            initial, _sphere(np.zeros(GENES)), rng=np.random.default_rng(5)
        )
        r2 = GeneticAlgorithm(config).run(
            initial, _sphere(np.zeros(GENES)), rng=np.random.default_rng(5)
        )
        assert r1.best_fitness == r2.best_fitness
        assert np.array_equal(r1.best_genes, r2.best_genes)

    def test_bad_population_shape(self, rng):
        with pytest.raises(ConfigurationError):
            GeneticAlgorithm().run(np.zeros((5, 7)), _sphere(np.zeros(GENES)), rng=rng)
