"""Tests for search-result bookkeeping."""

import numpy as np

from repro.ga.convergence import GenerationStats, SearchResult


def _result_with_curve(curve):
    result = SearchResult(best_genes=np.zeros(10), best_fitness=min(curve))
    for generation, value in enumerate(curve):
        result.history.append(
            GenerationStats(generation, value, value + 0.1, (generation + 1) * 10)
        )
    return result


class TestSearchResult:
    def test_generation_of_best_first_occurrence(self):
        result = _result_with_curve([0.5, 0.3, 0.2, 0.2, 0.2])
        assert result.generation_of_best == 2

    def test_generation_of_best_at_init(self):
        result = _result_with_curve([0.2, 0.2, 0.2])
        assert result.generation_of_best == 0

    def test_generations_to_reach(self):
        result = _result_with_curve([0.9, 0.5, 0.25, 0.1])
        assert result.generations_to_reach(0.5) == 1
        assert result.generations_to_reach(0.2) == 3
        assert result.generations_to_reach(0.05) is None

    def test_fitness_curve(self):
        result = _result_with_curve([0.9, 0.5])
        assert np.allclose(result.fitness_curve(), [0.9, 0.5])

    def test_empty_history(self):
        result = SearchResult(best_genes=np.zeros(10), best_fitness=1.0)
        assert result.generations == 0
        assert result.generation_of_best == -1
