"""Tests for the tracker's per-frame recovery ladder and FrameHealth."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TrackingError
from repro.ga.engine import GAConfig
from repro.ga.temporal import (
    FRAME_STATUSES,
    FrameHealth,
    RecoveryConfig,
    TemporalPoseTracker,
    TrackerConfig,
    TrackingResult,
)
from repro.model.annotation import simulate_human_annotation
from repro.model.fitness import FitnessConfig


def _fast_config(**overrides):
    defaults = dict(
        ga=GAConfig(population_size=30, max_generations=10, patience=5),
        fitness=FitnessConfig(max_points=500),
    )
    defaults.update(overrides)
    return TrackerConfig(**defaults)


def _annotation(jump):
    return simulate_human_annotation(
        jump.motion.poses[0],
        jump.dims,
        mask=jump.person_masks[0],
        rng=np.random.default_rng(0),
    )


class TestRecoveryConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_extrapolated": -1},
            {"reanchor_after": 0},
            {"collapse_factor": 1.0},
            {"min_silhouette_pixels": 0},
            {"min_area_fraction": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            RecoveryConfig(**kwargs)

    def test_defaults_enabled(self):
        assert TrackerConfig().recovery.enabled


class TestFrameHealth:
    def test_healthy_statuses(self):
        assert FrameHealth(0, "tracked").healthy
        assert FrameHealth(1, "reanchored").healthy
        assert not FrameHealth(2, "extrapolated").healthy
        assert not FrameHealth(3, "failed").healthy

    def test_to_dict(self):
        entry = FrameHealth(4, "extrapolated", "empty", "extrapolate")
        assert entry.to_dict() == {
            "frame": 4,
            "status": "extrapolated",
            "reason": "empty",
            "recovery": "extrapolate",
            "fitness": None,
        }

    def test_summary_counts_every_status(self):
        result = TrackingResult(
            poses=(),
            records=(),
            health=(
                FrameHealth(0, "tracked"),
                FrameHealth(1, "extrapolated"),
                FrameHealth(2, "failed"),
            ),
        )
        summary = result.health_summary()
        assert set(summary) == set(FRAME_STATUSES)
        assert summary["tracked"] == 1
        assert summary["reanchored"] == 0
        assert result.degraded
        assert result.unhealthy_frames() == [1, 2]


class TestRecoveryLadder:
    def test_empty_frame_bridged(self, short_jump):
        silhouettes = list(short_jump.person_masks)
        middle = len(silhouettes) // 2
        silhouettes[middle] = np.zeros_like(silhouettes[middle])
        annotation = _annotation(short_jump)
        tracker = TemporalPoseTracker(annotation.dims, _fast_config())
        result = tracker.track(
            silhouettes, annotation.pose, rng=np.random.default_rng(1)
        )
        assert len(result.poses) == len(silhouettes)
        assert len(result.health) == len(silhouettes)
        assert result.degraded
        assert result.unhealthy_frames() == [middle]
        entry = result.health[middle]
        assert entry.status == "extrapolated"
        assert entry.recovery in ("extrapolate", "carry_forward")
        assert "too small" in entry.reason

    def test_strict_mode_still_raises(self, short_jump):
        silhouettes = list(short_jump.person_masks)
        silhouettes[4] = np.zeros_like(silhouettes[4])
        annotation = _annotation(short_jump)
        config = _fast_config(recovery=RecoveryConfig(enabled=False))
        tracker = TemporalPoseTracker(annotation.dims, config)
        with pytest.raises(TrackingError):
            tracker.track(
                silhouettes, annotation.pose, rng=np.random.default_rng(1)
            )

    def test_long_outage_fails_then_reanchors(self, short_jump):
        silhouettes = list(short_jump.person_masks)
        outage = [3, 4, 5, 6]  # longer than max_extrapolated=3
        for index in outage:
            silhouettes[index] = np.zeros_like(silhouettes[index])
        annotation = _annotation(short_jump)
        tracker = TemporalPoseTracker(annotation.dims, _fast_config())
        result = tracker.track(
            silhouettes, annotation.pose, rng=np.random.default_rng(1)
        )
        statuses = {index: result.health[index].status for index in outage}
        assert statuses[6] == "failed"
        assert all(
            statuses[i] in ("extrapolated", "failed") for i in outage
        )
        # First usable frame after >= reanchor_after losses re-anchors.
        assert result.health[7].status == "reanchored"
        assert result.health[7].recovery == "auto_annotate"
        assert result.health_summary()["failed"] >= 1

    def test_clean_track_all_healthy(self, short_jump):
        annotation = _annotation(short_jump)
        tracker = TemporalPoseTracker(annotation.dims, _fast_config())
        result = tracker.track(
            list(short_jump.person_masks),
            annotation.pose,
            rng=np.random.default_rng(1),
        )
        assert not result.degraded
        assert result.unhealthy_frames() == []
        assert all(entry.healthy for entry in result.health)
        assert result.health[0].reason == "annotated first frame"

    def test_recovery_counters(self, short_jump):
        from repro.runtime import Instrumentation

        silhouettes = list(short_jump.person_masks)
        silhouettes[5] = np.zeros_like(silhouettes[5])
        annotation = _annotation(short_jump)
        instrumentation = Instrumentation()
        tracker = TemporalPoseTracker(
            annotation.dims, _fast_config(), instrumentation=instrumentation
        )
        tracker.track(
            silhouettes, annotation.pose, rng=np.random.default_rng(1)
        )
        assert instrumentation.counter("tracking.recovered_frames") == 1
        assert instrumentation.counter("tracking.frames") == len(silhouettes) - 1
