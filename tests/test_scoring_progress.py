"""Tests for the progress (before/after) comparison."""

import pytest

from repro.errors import ScoringError
from repro.scoring.progress import (
    FIXED,
    REGRESSED,
    STILL_FAILING,
    STILL_PASSING,
    compare_reports,
)
from repro.scoring.report import JumpScorer
from repro.scoring.standards import Standard
from repro.video.synthesis import SyntheticJumpConfig, synthesize_jump


def _report(violated=()):
    jump = synthesize_jump(SyntheticJumpConfig(seed=6, violated=tuple(violated)))
    return JumpScorer().score(
        jump.motion.poses, takeoff_frame=jump.motion.takeoff_frame
    )


class TestCompareReports:
    def test_flaw_fixed(self):
        before = _report([Standard.E1])
        after = _report([])
        progress = compare_reports(before, after)
        transitions = {r.rule_id: r.transition for r in progress.rules}
        assert transitions["R1"] == FIXED
        assert all(
            t == STILL_PASSING for rid, t in transitions.items() if rid != "R1"
        )
        assert progress.score_after > progress.score_before
        assert len(progress.improved) == 1
        assert not progress.regressed

    def test_regression(self):
        before = _report([])
        after = _report([Standard.E6])
        progress = compare_reports(before, after)
        transitions = {r.rule_id: r.transition for r in progress.rules}
        assert transitions["R6"] == REGRESSED
        assert len(progress.regressed) == 1

    def test_still_failing(self):
        before = _report([Standard.E3])
        after = _report([Standard.E3])
        progress = compare_reports(before, after)
        transitions = {r.rule_id: r.transition for r in progress.rules}
        assert transitions["R3"] == STILL_FAILING
        assert len(progress.outstanding) == 1

    def test_margin_change_sign(self):
        before = _report([Standard.E1])
        after = _report([])
        progress = compare_reports(before, after)
        r1 = next(r for r in progress.rules if r.rule_id == "R1")
        assert r1.margin_change > 0

    def test_render(self):
        progress = compare_reports(_report([Standard.E2]), _report([]))
        text = progress.render_text()
        assert "progress report" in text
        assert "FIXED" in text.upper() or "fixed" in text

    def test_mismatched_reports(self):
        report = _report([])
        from dataclasses import replace

        truncated = replace(report, results=report.results[:3])
        with pytest.raises(ScoringError):
            compare_reports(report, truncated)
