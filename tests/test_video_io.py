"""Tests for PPM frame-directory video I/O."""

import numpy as np
import pytest

from repro.errors import VideoError
from repro.video.io import load_ppm_dir, save_ppm_dir
from repro.video.sequence import VideoSequence


def _video(n=4):
    rng = np.random.default_rng(0)
    return VideoSequence([rng.random((8, 10, 3)) for _ in range(n)])


class TestPpmDir:
    def test_roundtrip(self, tmp_path):
        video = _video()
        paths = save_ppm_dir(video, tmp_path / "frames")
        assert len(paths) == 4
        back = load_ppm_dir(tmp_path / "frames")
        assert back.shape == video.shape
        assert np.abs(back.frames - video.frames).max() <= 1 / 255 + 1e-9

    def test_ordering_by_number(self, tmp_path):
        from repro.imaging.io import write_ppm

        directory = tmp_path / "frames"
        directory.mkdir()
        # deliberately write out of lexicographic order: 2 < 10
        write_ppm(directory / "shot_10.ppm", np.full((4, 4, 3), 0.8))
        write_ppm(directory / "shot_2.ppm", np.full((4, 4, 3), 0.2))
        video = load_ppm_dir(directory)
        assert video[0].mean() < video[1].mean()

    def test_missing_directory(self, tmp_path):
        with pytest.raises(VideoError):
            load_ppm_dir(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(VideoError):
            load_ppm_dir(tmp_path / "empty")

    def test_non_frame_files_ignored(self, tmp_path):
        directory = tmp_path / "frames"
        save_ppm_dir(_video(2), directory)
        (directory / "notes.txt").write_text("hello")
        assert len(load_ppm_dir(directory)) == 2
