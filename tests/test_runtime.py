"""Tests for the composable stage runtime and its observability layer."""

import threading
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ga.engine import GAConfig
from repro.ga.temporal import TrackerConfig
from repro.model.fitness import FitnessConfig
from repro.pipeline import AnalyzerConfig, JumpAnalyzer
from repro.runtime import (
    FunctionStage,
    Instrumentation,
    LoggingSink,
    MemorySink,
    MetricsRegistry,
    NullSink,
    PipelineRunner,
    RunTrace,
    StageContext,
    StageTiming,
    stage,
)


def _fast_analyzer():
    return JumpAnalyzer(
        AnalyzerConfig(
            tracker=TrackerConfig(
                ga=GAConfig(population_size=20, max_generations=6, patience=3),
                fitness=FitnessConfig(max_points=300),
                containment_margin=1,
                min_inside_fraction=0.95,
                containment_samples=7,
            )
        )
    )


class TestPipelineRunner:
    def test_stage_ordering_and_value_threading(self):
        seen = []

        def make(name):
            def fn(value, ctx):
                seen.append(name)
                return value + [name]

            return FunctionStage(name, fn)

        runner = PipelineRunner([make("a"), make("b"), make("c")])
        outcome = runner.run([])
        assert seen == ["a", "b", "c"]
        assert outcome.value == ["a", "b", "c"]
        assert outcome.trace.stage_names == ("a", "b", "c")

    def test_artifacts_flow_between_stages(self):
        producer = FunctionStage(
            "produce", lambda v, ctx: ctx.artifacts.__setitem__("x", 41) or v
        )
        consumer = FunctionStage(
            "consume", lambda v, ctx: ctx.require("x") + 1
        )
        outcome = PipelineRunner([producer, consumer]).run(None)
        assert outcome.value == 42

    def test_missing_artifact_is_a_clear_error(self):
        needy = FunctionStage("needy", lambda v, ctx: ctx.require("absent"))
        with pytest.raises(ConfigurationError, match="absent"):
            PipelineRunner([needy]).run(None)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineRunner([])

    def test_duplicate_stage_names_rejected(self):
        a = FunctionStage("same", lambda v, ctx: v)
        b = FunctionStage("same", lambda v, ctx: v)
        with pytest.raises(ConfigurationError, match="same"):
            PipelineRunner([a, b])

    def test_non_stage_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineRunner([object()])

    def test_timing_monotonicity(self):
        def sleepy(value, ctx):
            time.sleep(0.01)
            return value

        runner = PipelineRunner(
            [FunctionStage("s1", sleepy), FunctionStage("s2", sleepy)]
        )
        trace = runner.run(None).trace
        assert trace.seconds("s1") >= 0.01
        assert trace.seconds("s2") >= 0.01
        # the whole run takes at least as long as its stages combined
        assert trace.total_seconds >= trace.seconds("s1") + trace.seconds("s2")

    def test_stage_decorator(self):
        @stage("double")
        def double(value, ctx):
            return value * 2

        assert double.name == "double"
        assert PipelineRunner([double]).run(21).value == 42

    def test_exception_propagates(self):
        def boom(value, ctx):
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            PipelineRunner([FunctionStage("boom", boom)]).run(None)


class TestInstrumentation:
    def test_span_accumulates_across_calls(self):
        inst = Instrumentation()
        for _ in range(3):
            with inst.span("work"):
                pass
        timings = {t.name: t for t in inst.timings()}
        assert timings["work"].calls == 3
        assert timings["work"].seconds >= 0.0

    def test_counter_accumulation(self):
        inst = Instrumentation()
        inst.count("ga.evaluations", 60)
        inst.count("ga.evaluations", 40)
        inst.count("ga.runs")
        assert inst.counter("ga.evaluations") == 100
        assert inst.counter("ga.runs") == 1
        assert inst.counter("missing", default=-1) == -1

    def test_memory_sink_captures_everything(self):
        sink = MemorySink()
        inst = Instrumentation(sink)
        with inst.span("seg", frame=3):
            pass
        inst.count("pixels", 17)
        inst.event("converged", generation=2)

        (span,) = sink.spans()
        assert span.name == "seg" and span.value >= 0.0
        assert span.field_dict() == {"frame": 3}
        (counter,) = sink.counters()
        assert counter.name == "pixels" and counter.value == 17
        (event,) = sink.named("converged")
        assert event.kind == "event"
        assert event.field_dict() == {"generation": 2}

    def test_logging_sink_emits_records(self, caplog):
        import logging

        sink = LoggingSink(logging.getLogger("repro.test"), logging.INFO)
        inst = Instrumentation(sink)
        with caplog.at_level("INFO", logger="repro.test"):
            with inst.span("seg"):
                pass
            inst.count("pixels", 3)
            inst.event("done", ok=True)
        messages = " ".join(record.getMessage() for record in caplog.records)
        assert "span seg" in messages
        assert "counter pixels" in messages
        assert "event done" in messages

    def test_null_sink_primitives_are_cheap(self):
        inst = Instrumentation(NullSink())
        start = time.perf_counter()
        for _ in range(1000):
            with inst.span("hot"):
                pass
            inst.count("hot.counter")
        elapsed = time.perf_counter() - start
        # ~2µs per span+counter pair; 1000 pairs must stay far below
        # anything measurable against a multi-second analysis run.
        assert elapsed < 0.25

    def test_trace_snapshot(self):
        inst = Instrumentation()
        with inst.span("a"):
            pass
        inst.count("n", 2)
        trace = inst.trace(stages=(StageTiming("a", 0.5),), total_seconds=0.5)
        assert isinstance(trace, RunTrace)
        assert trace.stage_names == ("a",)
        assert trace.counters == {"n": 2}
        assert trace.total_seconds == 0.5


class TestRunTrace:
    def test_render_table_lists_stages_and_counters(self):
        trace = RunTrace(
            stages=(StageTiming("segmentation", 0.5), StageTiming("tracking", 1.25)),
            timings=(
                StageTiming("segmentation", 0.5),
                StageTiming("tracking/frame", 1.2, calls=19),
                StageTiming("tracking", 1.25),
            ),
            counters={"ga.evaluations": 620.0},
            total_seconds=1.75,
        )
        table = trace.render_table()
        assert "segmentation" in table
        assert "tracking/frame" in table
        assert "19" in table
        assert "ga.evaluations" in table
        assert "1.7500s" in table

    def test_to_dict_round_trips_through_json(self):
        import json

        trace = RunTrace(
            stages=(StageTiming("a", 0.1),),
            timings=(StageTiming("a", 0.1),),
            counters={"c": 1.0},
            total_seconds=0.1,
        )
        payload = json.loads(json.dumps(trace.to_dict()))
        assert payload["stages"][0]["name"] == "a"
        assert payload["counters"]["c"] == 1.0

    def test_lookup_helpers(self):
        trace = RunTrace(
            stages=(StageTiming("a", 0.1),),
            timings=(StageTiming("a", 0.1), StageTiming("a/sub", 0.05, calls=2)),
        )
        assert trace.timing("a/sub").mean_seconds == pytest.approx(0.025)
        assert trace.timing("nope") is None
        assert trace.seconds("nope") == 0.0


class TestMetricsRegistry:
    def test_traces_accumulate(self):
        registry = MetricsRegistry()
        trace = RunTrace(
            stages=(StageTiming("tracking", 1.0),),
            timings=(StageTiming("tracking", 1.0),),
            counters={"ga.evaluations": 100.0},
            total_seconds=1.0,
        )
        registry.observe_trace(trace)
        registry.observe_trace(trace)
        snapshot = registry.snapshot()
        assert snapshot["stages"]["tracking"]["calls"] == 2
        assert snapshot["stages"]["tracking"]["total_seconds"] == pytest.approx(2.0)
        assert snapshot["stages"]["tracking"]["mean_seconds"] == pytest.approx(1.0)
        assert snapshot["counters"]["ga.evaluations"] == 200.0

    def test_request_counting(self):
        registry = MetricsRegistry()
        registry.count_request("/analyze", 200)
        registry.count_request("/analyze", 400)
        registry.count_request("/health", 200)
        requests = registry.snapshot()["requests"]
        assert requests["total"] == 3
        assert requests["endpoint:/analyze"] == 2
        assert requests["status:200"] == 2

    def test_thread_safety_smoke(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(500):
                registry.increment("hits")

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.snapshot()["counters"]["hits"] == 4000


class TestAnalyzerOnRuntime:
    @pytest.fixture(scope="class")
    def clip_analysis(self, jump):
        sink = MemorySink()
        inst = Instrumentation(sink)
        analysis = _fast_analyzer().analyze(
            jump.video.clip(0, 6),
            rng=np.random.default_rng(0),
            instrumentation=inst,
        )
        return analysis, sink

    # class-scoped alias of the session `jump` fixture
    @pytest.fixture(scope="class")
    def jump(self):
        from repro.video.synthesis import SyntheticJumpConfig, synthesize_jump

        return synthesize_jump(SyntheticJumpConfig(seed=0))

    def test_trace_has_nonzero_stage_timings(self, clip_analysis):
        analysis, _ = clip_analysis
        trace = analysis.trace
        assert trace.stage_names == JumpAnalyzer.STAGES
        for name in ("segmentation", "tracking", "scoring"):
            assert trace.seconds(name) > 0.0, name
        assert trace.total_seconds > 0.0

    def test_segmentation_sub_stages_timed(self, clip_analysis):
        analysis, _ = clip_analysis
        trace = analysis.trace
        for sub in ("subtract", "noise_removal", "spot_removal",
                    "hole_fill", "shadow", "components"):
            timing = trace.timing(f"segmentation/{sub}")
            assert timing is not None, sub
            assert timing.calls == 6
        assert trace.timing("segmentation/fit_background").calls == 1

    def test_tracking_counters_accumulated(self, clip_analysis):
        analysis, _ = clip_analysis
        trace = analysis.trace
        assert trace.counter("ga.runs") == 5  # frames 1..5
        assert trace.counter("ga.generations") > 0
        assert trace.counter("ga.evaluations") > 0
        assert trace.counter("fitness.silhouette_points") > 0
        assert trace.counter("scoring.rules_evaluated") == 7
        assert trace.timing("tracking/frame").calls == 5

    def test_per_frame_convergence_events_emitted(self, clip_analysis):
        _, sink = clip_analysis
        events = [e for e in sink.named("tracking/frame") if e.kind == "event"]
        assert [e.field_dict()["frame"] for e in events] == [1, 2, 3, 4, 5]
        assert all("generation_of_best" in e.field_dict() for e in events)

    def test_trace_serialised_with_analysis(self, clip_analysis):
        from repro.serialization import analysis_to_dict

        analysis, _ = clip_analysis
        payload = analysis_to_dict(analysis)
        assert payload["trace"]["total_seconds"] > 0.0
        names = [s["name"] for s in payload["trace"]["stages"]]
        assert names == list(JumpAnalyzer.STAGES)

    def test_silent_sink_adds_no_measurable_overhead(self, jump):
        """A NullSink run must not be meaningfully slower than the sink-
        free default (which is itself a NullSink under the hood)."""
        clip = jump.video.clip(0, 5)
        analyzer = _fast_analyzer()

        def timed(**kwargs):
            start = time.perf_counter()
            analyzer.analyze(clip, rng=np.random.default_rng(0), **kwargs)
            return time.perf_counter() - start

        timed()  # warm caches
        baseline = min(timed(), timed())
        silent = min(
            timed(instrumentation=Instrumentation(NullSink())),
            timed(instrumentation=Instrumentation(NullSink())),
        )
        # generous bound: instrumentation is microseconds against a run
        # of hundreds of milliseconds; 1.5x absorbs scheduler noise.
        assert silent < 1.5 * baseline + 0.05


class TestSegmentationIntrospection:
    def test_sub_stage_names_exposed(self):
        from repro.segmentation.pipeline import SegmentationPipeline

        assert SegmentationPipeline().sub_stage_names() == (
            "subtract",
            "noise_removal",
            "spot_removal",
            "hole_fill",
            "shadow",
            "components",
        )
