"""Tests for the typed configuration layer and component registry."""

import json

import numpy as np
import pytest

from repro.analysis.kalman import KalmanConfig
from repro.config import (
    PRESETS,
    apply_overrides,
    config_from_dict,
    config_hash,
    config_to_dict,
    get_preset,
    load_config_data,
    parse_override,
    preset_names,
    resolve_config,
)
from repro.errors import ConfigurationError
from repro.ga.baselines import HillClimbConfig
from repro.ga.engine import GAConfig
from repro.ga.operators import OperatorConfig
from repro.ga.single_frame import SingleFrameConfig
from repro.ga.temporal import TrackerConfig
from repro.model.fitness import FitnessConfig
from repro.model.sticks import AngleWindows
from repro.perf.executors import ParallelConfig
from repro.pipeline import AnalyzerConfig
from repro.registry import Registry
from repro.segmentation.background import ChangeDetectionConfig
from repro.segmentation.cleanup import CleanupConfig
from repro.segmentation.pipeline import SegmentationConfig
from repro.segmentation.shadow import ShadowMaskConfig
from repro.segmentation.subtraction import SubtractionConfig

ALL_CONFIG_CLASSES = [
    AnalyzerConfig,
    TrackerConfig,
    GAConfig,
    OperatorConfig,
    FitnessConfig,
    HillClimbConfig,
    SingleFrameConfig,
    SegmentationConfig,
    ChangeDetectionConfig,
    SubtractionConfig,
    CleanupConfig,
    ShadowMaskConfig,
    AngleWindows,
    KalmanConfig,
    ParallelConfig,
]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "cls", ALL_CONFIG_CLASSES, ids=lambda c: c.__name__
    )
    def test_default_roundtrip(self, cls):
        config = cls()
        data = config_to_dict(config)
        assert config_from_dict(cls, data) == config

    @pytest.mark.parametrize(
        "cls", ALL_CONFIG_CLASSES, ids=lambda c: c.__name__
    )
    def test_dict_is_json_ready(self, cls):
        data = config_to_dict(cls())
        assert config_from_dict(cls, json.loads(json.dumps(data))) == cls()

    def test_non_default_roundtrip(self):
        config = AnalyzerConfig(
            tracker=TrackerConfig(
                ga=GAConfig(population_size=24, max_generations=7),
                strategy="hill_climb",
                extrapolate=False,
            ),
            smoothing_mode="kalman",
        )
        assert AnalyzerConfig.from_dict(config.to_dict()) == config

    def test_unknown_key_rejected_with_path(self):
        data = AnalyzerConfig().to_dict()
        data["tracker"]["ga"]["populaton_size"] = 10  # typo
        with pytest.raises(ConfigurationError, match="populaton_size"):
            AnalyzerConfig.from_dict(data)

    def test_bad_type_names_dotted_path(self):
        data = AnalyzerConfig().to_dict()
        data["tracker"]["ga"]["max_generations"] = "banana"
        with pytest.raises(ConfigurationError, match="tracker.ga.max_generations"):
            AnalyzerConfig.from_dict(data)

    def test_validators_still_run(self):
        data = config_to_dict(GAConfig())
        data["elite_fraction"] = 3.0
        with pytest.raises(ConfigurationError, match="elite_fraction"):
            config_from_dict(GAConfig, data)

    def test_optional_field(self):
        data = config_to_dict(GAConfig())
        data["patience"] = None
        assert config_from_dict(GAConfig, data).patience is None

    def test_nested_tuple_of_tuples(self):
        config = config_from_dict(
            OperatorConfig,
            {"gene_groups": [[0, 1], [2], [3, 6], [4, 7], [5, 8, 9]]},
        )
        assert config.gene_groups == ((0, 1), (2,), (3, 6), (4, 7), (5, 8, 9))


class TestHash:
    def test_stable_across_key_order(self):
        data = config_to_dict(AnalyzerConfig())
        reordered = json.loads(json.dumps(data))
        reordered["tracker"] = dict(reversed(list(reordered["tracker"].items())))
        assert config_hash(data) == config_hash(reordered)

    def test_accepts_dataclass_and_dict(self):
        config = AnalyzerConfig()
        assert config_hash(config) == config_hash(config.to_dict())
        assert config.hash == config_hash(config)

    def test_changes_with_content(self):
        base = AnalyzerConfig()
        tweaked = resolve_config(overrides=["tracker.ga.max_generations=3"])
        assert config_hash(base) != config_hash(tweaked)


class TestPresets:
    def test_known_names(self):
        assert set(preset_names()) >= {"paper", "fast", "accurate"}

    def test_paper_is_strict(self):
        paper = get_preset("paper")
        assert paper.robustness.enabled is False
        assert paper.tracker.recovery.enabled is False

    def test_paper_matches_defaults_outside_robustness(self):
        from dataclasses import replace

        from repro.ga.temporal import RecoveryConfig
        from repro.pipeline import RobustnessConfig

        paper = get_preset("paper")
        default = AnalyzerConfig()
        relaxed = replace(
            paper,
            robustness=RobustnessConfig(),
            tracker=replace(paper.tracker, recovery=RecoveryConfig()),
        )
        assert relaxed == default

    def test_fast_reduces_budget(self):
        fast = get_preset("fast")
        assert fast.tracker.ga.max_generations == 10
        assert fast.tracker.ga.population_size == 30
        assert fast.tracker.fitness.max_points == 600

    def test_fast_enables_threaded_frames(self):
        fast = get_preset("fast")
        assert fast.parallel.backend == "threads"
        assert not fast.parallel.is_serial

    def test_paper_stays_serial_float64(self):
        paper = get_preset("paper")
        assert paper.parallel.is_serial
        assert paper.tracker.fitness.precision == "float64"

    def test_parallel_round_trips_through_config_layer(self):
        config = AnalyzerConfig(
            parallel=ParallelConfig(backend="processes", workers=3)
        )
        restored = config_from_dict(AnalyzerConfig, config_to_dict(config))
        assert restored == config
        assert restored.parallel.workers == 3

    def test_parallel_is_execution_only_for_hashing(self):
        serial = AnalyzerConfig()
        threaded = AnalyzerConfig(
            parallel=ParallelConfig(backend="threads", workers=4)
        )
        assert config_hash(serial) == config_hash(threaded)

    def test_fitness_tuning_changes_hash(self):
        from dataclasses import replace

        base = AnalyzerConfig()
        tuned = replace(
            base,
            tracker=replace(
                base.tracker,
                fitness=replace(base.tracker.fitness, precision="float32"),
            ),
        )
        assert config_hash(base) != config_hash(tuned)

    def test_unknown_preset_lists_names(self):
        with pytest.raises(ConfigurationError, match="paper"):
            get_preset("warp-speed")

    def test_fresh_instance_per_call(self):
        assert get_preset("fast") is not get_preset("fast")

    def test_duplicate_preset_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            PRESETS.add("fast", lambda: AnalyzerConfig())


class TestOverrides:
    def test_parse_number(self):
        assert parse_override("tracker.ga.max_generations=5") == (
            ("tracker", "ga", "max_generations"),
            5,
        )

    def test_parse_bare_string(self):
        assert parse_override("tracker.strategy=hill_climb") == (
            ("tracker", "strategy"),
            "hill_climb",
        )

    def test_parse_bool_and_null(self):
        assert parse_override("tracker.polish=false")[1] is False
        assert parse_override("tracker.ga.patience=null")[1] is None

    def test_missing_equals_rejected(self):
        with pytest.raises(ConfigurationError, match="dotted.key=value"):
            parse_override("tracker.ga.max_generations")

    def test_apply_to_resolved_config(self):
        config = resolve_config(
            overrides=[
                "tracker.ga.max_generations=5",
                "smoothing_mode=none",
                "tracker.strategy=nelder_mead",
            ]
        )
        assert config.tracker.ga.max_generations == 5
        assert config.smoothing_mode == "none"
        assert config.tracker.strategy == "nelder_mead"

    def test_type_coercion_error(self):
        with pytest.raises(ConfigurationError, match="max_generations"):
            resolve_config(overrides=["tracker.ga.max_generations=banana"])

    def test_unknown_key_error(self):
        with pytest.raises(ConfigurationError, match="no_such_knob"):
            resolve_config(overrides=["tracker.no_such_knob=1"])

    def test_scalar_section_clash(self):
        data = {"a": 1}
        with pytest.raises(ConfigurationError, match="not a"):
            apply_overrides(data, ["a.b=2"])


class TestFileLoading:
    def test_json_file(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps({"tracker": {"ga": {"population_size": 12}}}))
        config = resolve_config(config_file=path)
        assert config.tracker.ga.population_size == 12
        # untouched keys keep their defaults
        assert config.tracker.ga.max_generations == 30

    def test_toml_file(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")
        assert tomllib  # quiet the linter
        path = tmp_path / "cfg.toml"
        path.write_text("[tracker.ga]\npopulation_size = 12\n")
        assert resolve_config(config_file=path).tracker.ga.population_size == 12

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            load_config_data(tmp_path / "nope.json")

    def test_analysis_json_extracts_config(self, tmp_path):
        payload = {
            "config": config_to_dict(get_preset("fast")),
            "config_hash": "abc",
            "report": {},
        }
        path = tmp_path / "analysis.json"
        path.write_text(json.dumps(payload))
        assert resolve_config(config_file=path) == get_preset("fast")

    def test_precedence_preset_file_override(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps({"tracker": {"ga": {"max_generations": 7}}}))
        config = resolve_config(
            preset="fast",
            config_file=path,
            overrides=["tracker.ga.population_size=16"],
        )
        assert config.tracker.ga.max_generations == 7  # file beats preset
        assert config.tracker.ga.population_size == 16  # override beats file
        assert config.tracker.fitness.max_points == 600  # preset survives


class TestRegistry:
    def test_duplicate_name_rejected(self):
        registry = Registry("widget")
        registry.add("a", object())
        with pytest.raises(ConfigurationError, match="duplicate widget"):
            registry.add("a", object())

    def test_unknown_name_lists_known(self):
        registry = Registry("widget")
        registry.add("alpha", 1)
        registry.add("beta", 2)
        with pytest.raises(ConfigurationError, match="alpha, beta"):
            registry.get("gamma")

    def test_decorator_registration(self):
        registry = Registry("fn")

        @registry.register("double")
        def double(x):
            return 2 * x

        assert registry.get("double") is double
        assert "double" in registry and len(registry) == 1

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            Registry("widget").add("", 1)


class TestSearchStrategies:
    def test_all_four_registered(self):
        from repro.ga.strategies import SEARCH_STRATEGIES

        assert set(SEARCH_STRATEGIES.names()) == {
            "ga",
            "hill_climb",
            "random_search",
            "nelder_mead",
        }

    def test_unknown_strategy_rejected_at_config_time(self):
        with pytest.raises(ConfigurationError, match="hill_climb"):
            TrackerConfig(strategy="simulated_annealing")

    @pytest.mark.parametrize(
        "strategy", ["ga", "hill_climb", "random_search", "nelder_mead"]
    )
    def test_strategy_estimates_a_frame(self, strategy):
        from repro.ga.temporal import TemporalPoseTracker
        from repro.model.annotation import auto_annotate
        from repro.model.pose import StickPose

        annotation = auto_annotate(_standing_mask())
        config = TrackerConfig(
            ga=GAConfig(population_size=8, max_generations=2, patience=2),
            fitness=FitnessConfig(max_points=200),
            strategy=strategy,
            limb_rescue=False,
            polish=False,
        )
        tracker = TemporalPoseTracker(annotation.dims, config)
        pose, result = tracker.estimate_frame(
            _standing_mask(), annotation.pose, rng=np.random.default_rng(0)
        )
        assert isinstance(pose, StickPose)
        assert np.isfinite(result.best_fitness)
        assert result.total_evaluations > 0


class TestSegmentationSteps:
    def test_default_steps_registered(self):
        from repro.segmentation.pipeline import (
            DEFAULT_STEPS,
            SEGMENTATION_STEPS,
        )

        assert SegmentationConfig().steps == DEFAULT_STEPS
        for name in DEFAULT_STEPS:
            assert name in SEGMENTATION_STEPS

    def test_unknown_step_rejected(self):
        with pytest.raises(Exception, match="unknown segmentation step"):
            SegmentationConfig(steps=("subtract", "levitate"))

    def test_subtract_is_mandatory(self):
        with pytest.raises(Exception, match="mandatory"):
            SegmentationConfig(steps=("noise_removal",))


def _standing_mask():
    """A coarse person-shaped silhouette for strategy smoke tests."""
    mask = np.zeros((120, 80), dtype=bool)
    mask[20:100, 35:45] = True  # trunk + legs
    mask[10:26, 32:48] = True  # head
    return mask
