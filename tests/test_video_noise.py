"""Tests for the sensor/illumination noise model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.video.synthesis.noise import NoiseConfig, apply_noise


class TestConfig:
    def test_none_config(self):
        config = NoiseConfig.none()
        assert config.pixel_sigma == 0.0
        assert config.blob_count == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NoiseConfig(pixel_sigma=-0.1)
        with pytest.raises(ConfigurationError):
            NoiseConfig(blob_count=-1)
        with pytest.raises(ConfigurationError):
            NoiseConfig(blob_radius_range=(3, 1))


class TestApplyNoise:
    def test_no_noise_is_identity(self, rng):
        frame = rng.random((10, 10, 3))
        out = apply_noise(frame, NoiseConfig.none(), rng)
        assert np.array_equal(out, frame)

    def test_output_in_range(self, rng):
        frame = rng.random((20, 20, 3))
        out = apply_noise(frame, NoiseConfig(), rng)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_pixel_noise_magnitude(self, rng):
        frame = np.full((50, 50, 3), 0.5)
        config = NoiseConfig(pixel_sigma=0.02, flicker_sigma=0.0, blob_count=0)
        out = apply_noise(frame, config, rng)
        residual = out - frame
        assert 0.01 < residual.std() < 0.03

    def test_blobs_create_outliers(self, rng):
        frame = np.full((40, 40, 3), 0.5)
        config = NoiseConfig(pixel_sigma=0.0, flicker_sigma=0.0, blob_count=5,
                             blob_strength=0.2)
        out = apply_noise(frame, config, rng)
        changed = np.abs(out - frame).max(axis=-1) > 0.05
        assert 2 <= changed.sum() <= 5 * 49

    def test_input_unchanged(self, rng):
        frame = rng.random((10, 10, 3))
        original = frame.copy()
        apply_noise(frame, NoiseConfig(), rng)
        assert np.array_equal(frame, original)

    def test_deterministic_given_rng(self):
        frame = np.full((10, 10, 3), 0.4)
        a = apply_noise(frame, NoiseConfig(), np.random.default_rng(9))
        b = apply_noise(frame, NoiseConfig(), np.random.default_rng(9))
        assert np.array_equal(a, b)
