"""Track lifecycle and :class:`TrackManager` unit tests (mask level)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TrackingError
from repro.ga.engine import GAConfig
from repro.ga.temporal import RecoveryConfig, TrackerConfig
from repro.model.fitness import FitnessConfig
from repro.runtime import Instrumentation
from repro.tracking import TrackManager, TrackingConfig

SHAPE = (60, 100)


def blob(row, col, height=14, width=10):
    mask = np.zeros(SHAPE, dtype=bool)
    mask[row : row + height, col : col + width] = True
    return mask


def fast_tracker_config(**overrides):
    return TrackerConfig(
        ga=GAConfig(population_size=16, max_generations=3, patience=2),
        fitness=FitnessConfig(max_points=200),
        **overrides,
    )


def manager(instrumentation=None, tracker_config=None, **tracking_overrides):
    return TrackManager(
        tracker_config or fast_tracker_config(),
        TrackingConfig(enabled=True, **tracking_overrides),
        rng=np.random.default_rng(0),
        instrumentation=instrumentation,
    )


class TestTrackingConfigValidation:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("max_tracks", 0),
            ("method", "nearest"),
            ("iou_threshold", 0.0),
            ("iou_threshold", 1.5),
            ("confirm_hits", 0),
            ("max_misses", 0),
            ("min_spawn_area", 0),
            ("box_margin", -1),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ConfigurationError):
            TrackingConfig(**{field: value})

    def test_confirm_hits_one_confirms_on_spawn(self):
        m = manager(confirm_hits=1)
        m.step(blob(5, 10))
        assert m.tracks[0].state == "confirmed"


class TestLifecycle:
    def test_spawn_is_tentative_then_confirms(self):
        m = manager(confirm_hits=2)
        m.step(blob(5, 10))
        (track,) = m.tracks
        assert track.state == "tentative" and track.track_id == "t0"
        m.step(blob(5, 12))
        assert track.state == "confirmed"

    def test_retires_after_max_misses(self):
        m = manager(max_misses=2)
        m.step(blob(5, 10))
        m.step(blob(5, 12))
        empty = np.zeros(SHAPE, dtype=bool)
        m.step(empty)
        assert m.tracks[0].alive
        m.step(empty)
        assert m.tracks[0].state == "retired"
        assert not m.alive_tracks()

    def test_trailing_misses_trimmed_from_result(self):
        m = manager(max_misses=3)
        for _ in range(4):
            m.step(blob(5, 10))
        for _ in range(3):
            m.step(np.zeros(SHAPE, dtype=bool))
        track = m.tracks[0]
        assert track.state == "retired"
        assert track.frames == 7  # carried frames were consumed...
        assert len(track.result().poses) == 4  # ...but trimmed from the result
        assert len(track.result(trim_trailing_misses=False).poses) == 7

    def test_miss_then_recovery_keeps_interior_frames(self):
        m = manager(max_misses=3)
        m.step(blob(5, 10))
        m.step(blob(5, 12))
        m.step(np.zeros(SHAPE, dtype=bool))  # one occluded frame
        m.step(blob(5, 16))  # reacquired
        track = m.tracks[0]
        assert track.alive
        # The interior carried frame stays: only the tail is trimmed.
        assert len(track.result().poses) == 4

    def test_recovery_disabled_retires_on_first_miss(self):
        config = fast_tracker_config(recovery=RecoveryConfig(enabled=False))
        m = manager(tracker_config=config, max_misses=3)
        m.step(blob(5, 10))
        m.step(np.zeros(SHAPE, dtype=bool))
        track = m.tracks[0]
        assert track.state == "retired"
        assert track.frames == 1  # the miss consumed no frame


class TestSpawning:
    def test_min_spawn_area_blocks_debris(self):
        m = manager(min_spawn_area=80)
        m.step(blob(5, 10, height=4, width=4))  # 16 px of debris
        assert not m.tracks

    def test_max_tracks_caps_births(self):
        # Segmentation hands over one more candidate than max_tracks
        # (the multi_actor_config slack slot): the excess birth is
        # suppressed and counted, not silently dropped.
        inst = Instrumentation()
        m = manager(instrumentation=inst, max_tracks=2)
        parts = [blob(5, 10), blob(25, 10), blob(45, 10)]
        m.step(parts[0] | parts[1] | parts[2], candidates=parts)
        assert len(m.tracks) == 2
        assert inst.counter("tracking.births") == 2
        assert inst.counter("tracking.births_suppressed") == 1

    def test_ids_follow_spawn_order(self):
        m = manager(max_tracks=3)
        m.step(blob(5, 10))
        m.step(blob(5, 12) | blob(40, 10))
        assert [t.track_id for t in m.tracks] == ["t0", "t1"]
        assert m.tracks[1].start_frame == 1

    def test_larger_component_spawns_first(self):
        # Equal start frame: candidate order is area descending, so the
        # bigger blob becomes t0 even though it sits lower in the frame.
        m = manager(max_tracks=2)
        m.step(blob(5, 10, height=10, width=10) | blob(30, 10, height=16, width=12))
        by_id = {t.track_id: t for t in m.tracks}
        assert by_id["t0"].annotation.pose.y0 < by_id["t1"].annotation.pose.y0

    def test_empty_scene_has_no_primary(self):
        m = manager()
        m.step(np.zeros(SHAPE, dtype=bool))
        with pytest.raises(TrackingError, match="no tracks"):
            m.primary_track()


class TestManagerStep:
    def test_states_report_match_and_miss(self):
        m = manager(max_tracks=2)
        m.step(blob(5, 10) | blob(40, 10))
        states = m.step(blob(5, 12))  # second actor vanished
        by_id = {s.track_id: s for s in states}
        assert by_id["t0"].matched and by_id["t0"].box is not None
        assert not by_id["t1"].matched and by_id["t1"].box is None

    def test_state_to_dict_shape(self):
        m = manager()
        (state,) = m.step(blob(5, 10))
        payload = state.to_dict()
        assert set(payload) == {
            "track_id",
            "state",
            "matched",
            "pose",
            "box",
            "health",
        }
        assert payload["box"] is not None and len(payload["box"]) == 4
        assert payload["pose"] is not None and len(payload["pose"]) == 10

    def test_candidates_override_mask_splitting(self):
        m = manager(max_tracks=2)
        mask = blob(5, 10) | blob(40, 10)
        m.step(mask, candidates=[blob(5, 10), blob(40, 10)])
        assert len(m.tracks) == 2

    def test_primary_is_longest_confirmed(self):
        m = manager(max_tracks=2)
        m.step(blob(5, 10))
        for f in range(1, 6):
            m.step(blob(5, 10 + 2 * f) | blob(40, 10 + 2 * (f - 1)))
        assert m.primary_track().track_id == "t0"

    def test_deterministic_across_runs(self):
        def run():
            m = manager(max_tracks=2)
            for f in range(5):
                m.step(blob(5, 10 + 2 * f) | blob(40, 10 + 2 * f))
            return [
                (t.track_id, t.state, [(p.x0, p.y0) for p in t.result().poses])
                for t in m.tracks
            ]

        assert run() == run()

    def test_association_counters(self):
        inst = Instrumentation()
        m = manager(instrumentation=inst, max_tracks=1)
        m.step(blob(5, 10))
        m.step(blob(5, 12))
        m.step(np.zeros(SHAPE, dtype=bool))
        assert inst.counter("tracking.associations") == 1
        assert inst.counter("tracking.misses") == 1
