"""Tests for local polish, annotation refinement and Otsu thresholding."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.ga.refine import local_polish
from repro.imaging.threshold import otsu_binarize, otsu_threshold
from repro.model.annotation import (
    FirstFrameAnnotation,
    refine_annotation,
)
from repro.model.fitness import SilhouetteFitness
from repro.model.pose import GENES, StickPose
from repro.model.sticks import default_body
from repro.segmentation.subtraction import SubtractionConfig, subtract_background
from repro.video.synthesis.render import person_mask_for_pose

BODY = default_body(60.0)


class TestLocalPolish:
    def test_improves_quadratic(self):
        target = np.full(GENES, 100.0)

        def fitness(genes):
            return ((np.atleast_2d(genes) - target) ** 2).sum(axis=1)

        start = target + 5.0
        refined = local_polish(start, fitness)
        assert fitness(refined[None, :])[0] < fitness(start[None, :])[0]

    def test_respects_validity(self):
        def fitness(genes):
            return np.atleast_2d(genes)[:, 0] ** 2

        def never_valid(genes):
            return np.zeros(np.atleast_2d(genes).shape[0], dtype=bool)

        start = np.full(GENES, 3.0)
        refined = local_polish(start, fitness, validity_fn=never_valid)
        assert np.array_equal(refined, start)  # no move was allowed

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            local_polish(np.zeros(5), lambda g: np.zeros(1))


class TestRefineAnnotation:
    def test_improves_fitness_of_rough_annotation(self):
        true_pose = StickPose.standing(60.0, 50.0)
        mask = person_mask_for_pose(true_pose, BODY, (120, 160))
        rough = FirstFrameAnnotation(
            pose=true_pose.translated(2.0, -1.5).with_angle("thigh", 172.0),
            dims=BODY,
        )
        refined = refine_annotation(rough, mask)
        fitness = SilhouetteFitness(mask, BODY)
        assert fitness.evaluate_pose(refined.pose) <= fitness.evaluate_pose(
            rough.pose
        )
        # thicknesses were re-calibrated
        assert refined.dims.thicknesses != BODY.thicknesses


class TestOtsu:
    def test_bimodal_separation(self, rng):
        low = rng.normal(0.2, 0.02, 500)
        high = rng.normal(0.8, 0.02, 200)
        values = np.clip(np.concatenate([low, high]), 0, 1)
        threshold = otsu_threshold(values)
        assert 0.3 < threshold < 0.7

    def test_constant_input(self):
        assert otsu_threshold(np.full(10, 0.4)) == pytest.approx(0.4)

    def test_binarize(self):
        image = np.zeros((10, 10))
        image[:, 5:] = 0.9
        binary = otsu_binarize(image)
        assert binary[:, 5:].all() and not binary[:, :5].any()

    def test_validation(self):
        with pytest.raises(ImageError):
            otsu_threshold(np.array([]))
        with pytest.raises(ImageError):
            otsu_threshold(np.arange(5.0), bins=1)
        with pytest.raises(ImageError):
            otsu_binarize(np.zeros((2, 2, 3)))


class TestOtsuSubtraction:
    def test_otsu_mode_finds_person(self, jump):
        background = jump.background
        frame = jump.video[10]
        fixed = subtract_background(frame, background)
        otsu = subtract_background(
            frame, background, SubtractionConfig(mode="otsu")
        )
        truth = jump.foreground_mask(10)
        from repro.imaging.metrics import f1_score

        assert f1_score(otsu, truth) > 0.7
        assert abs(f1_score(otsu, truth) - f1_score(fixed, truth)) < 0.2

    def test_clamping(self, jump):
        # a frame identical to the background: threshold clamps, and the
        # mask stays (near) empty instead of binarising noise
        background = jump.background
        config = SubtractionConfig(mode="otsu", min_threshold=0.08)
        mask = subtract_background(background, background, config)
        assert mask.mean() < 0.01

    def test_mode_validation(self):
        with pytest.raises(Exception):
            SubtractionConfig(mode="adaptive")