"""Tests for tracking confidence diagnostics."""

import numpy as np

from repro.ga.convergence import SearchResult
from repro.ga.temporal import FrameTrackingRecord, TrackingResult
from repro.model.pose import StickPose


def _result_with_fitness(values):
    poses = [StickPose.standing(0, 0)] * (len(values) + 1)
    records = []
    for index, value in enumerate(values):
        search = SearchResult(best_genes=np.zeros(10), best_fitness=value)
        records.append(
            FrameTrackingRecord(
                frame_index=index + 1,
                pose=poses[index + 1],
                fitness=value,
                search=search,
            )
        )
    return TrackingResult(poses=tuple(poses), records=tuple(records))


class TestConfidence:
    def test_uniform_fitness_high_confidence(self):
        result = _result_with_fitness([0.3] * 10)
        confidence = result.confidence_track()
        assert (confidence > 0.5).all()
        assert result.flagged_frames() == []

    def test_outlier_flagged(self):
        values = [0.30, 0.31, 0.29, 0.30, 0.95, 0.30, 0.31, 0.30]
        result = _result_with_fitness(values)
        confidence = result.confidence_track()
        worst = int(confidence.argmin())
        assert values[worst] == 0.95
        flagged = result.flagged_frames(confidence_threshold=0.25)
        assert flagged == [5]  # frame_index is 1-based over records

    def test_confidence_in_unit_interval(self):
        rng = np.random.default_rng(0)
        result = _result_with_fitness(list(rng.uniform(0.2, 0.6, 15)))
        confidence = result.confidence_track()
        assert (confidence >= 0).all() and (confidence <= 1).all()

    def test_empty_records(self):
        result = TrackingResult(poses=(StickPose.standing(0, 0),), records=())
        assert result.confidence_track().size == 0
        assert result.flagged_frames() == []
