"""Tests for tracking confidence diagnostics."""

import numpy as np

from repro.ga.convergence import SearchResult
from repro.ga.temporal import FrameTrackingRecord, TrackingResult
from repro.model.pose import StickPose


def _result_with_fitness(values):
    poses = [StickPose.standing(0, 0)] * (len(values) + 1)
    records = []
    for index, value in enumerate(values):
        search = SearchResult(best_genes=np.zeros(10), best_fitness=value)
        records.append(
            FrameTrackingRecord(
                frame_index=index + 1,
                pose=poses[index + 1],
                fitness=value,
                search=search,
            )
        )
    return TrackingResult(poses=tuple(poses), records=tuple(records))


class TestConfidence:
    def test_uniform_fitness_neutral_confidence(self):
        # Degenerate spread (MAD ~ 0): every frame gets the neutral 0.5
        # instead of a divide-by-zero artefact, and nothing is flagged.
        result = _result_with_fitness([0.3] * 10)
        confidence = result.confidence_track()
        assert (confidence == 0.5).all()
        assert result.flagged_frames() == []

    def test_near_degenerate_spread_is_neutral(self):
        values = [0.3 + 1e-12 * i for i in range(8)]
        confidence = _result_with_fitness(values).confidence_track()
        assert (confidence == 0.5).all()

    def test_outlier_flagged(self):
        values = [0.30, 0.31, 0.29, 0.30, 0.95, 0.30, 0.31, 0.30]
        result = _result_with_fitness(values)
        confidence = result.confidence_track()
        worst = int(confidence.argmin())
        assert values[worst] == 0.95
        flagged = result.flagged_frames(confidence_threshold=0.25)
        assert flagged == [5]  # frame_index is 1-based over records

    def test_confidence_in_unit_interval(self):
        rng = np.random.default_rng(0)
        result = _result_with_fitness(list(rng.uniform(0.2, 0.6, 15)))
        confidence = result.confidence_track()
        assert (confidence >= 0).all() and (confidence <= 1).all()

    def test_empty_records(self):
        result = TrackingResult(poses=(StickPose.standing(0, 0),), records=())
        assert result.confidence_track().size == 0
        assert result.flagged_frames() == []


class TestFlaggingThresholds:
    VALUES = [0.30, 0.31, 0.29, 0.30, 0.95, 0.30, 0.31, 0.30]

    def test_zero_threshold_flags_nothing(self):
        result = _result_with_fitness(self.VALUES)
        assert result.flagged_frames(confidence_threshold=0.0) == []

    def test_threshold_above_one_flags_everything(self):
        result = _result_with_fitness(self.VALUES)
        flagged = result.flagged_frames(confidence_threshold=1.01)
        assert flagged == list(range(1, len(self.VALUES) + 1))

    def test_threshold_is_monotonic(self):
        # A larger threshold can only flag a superset of frames.
        result = _result_with_fitness(self.VALUES)
        previous: set[int] = set()
        for threshold in (0.1, 0.25, 0.5, 0.9):
            flagged = set(result.flagged_frames(confidence_threshold=threshold))
            assert previous <= flagged
            previous = flagged

    def test_flag_indices_follow_record_frames(self):
        # flagged_frames reports TrackingResult frame indices, which
        # are offset by one from positions in the fitness track.
        result = _result_with_fitness(self.VALUES)
        confidence = result.confidence_track()
        flagged = result.flagged_frames(confidence_threshold=0.25)
        for frame in flagged:
            assert confidence[frame - 1] < 0.25
