"""Tests for the silhouette-containment feasibility check."""

import numpy as np
import pytest

from repro.model.containment import ContainmentChecker
from repro.model.pose import StickPose
from repro.model.sticks import default_body
from repro.video.synthesis.render import person_mask_for_pose

BODY = default_body(60.0)
SHAPE = (120, 160)


def _setup():
    pose = StickPose.standing(60.0, 50.0)
    mask = person_mask_for_pose(pose, BODY, SHAPE)
    return pose, mask


class TestCheck:
    def test_true_pose_feasible(self):
        pose, mask = _setup()
        checker = ContainmentChecker(mask, BODY)
        assert checker.check_pose(pose)

    def test_far_pose_infeasible(self):
        pose, mask = _setup()
        checker = ContainmentChecker(mask, BODY)
        assert not checker.check_pose(pose.translated(40.0, 0.0))

    def test_arm_sticking_out_infeasible(self):
        pose, mask = _setup()
        checker = ContainmentChecker(mask, BODY, margin=1)
        # Arm horizontal forward while the silhouette has it hanging.
        assert not checker.check_pose(pose.with_angle("upper_arm", 90.0))

    def test_out_of_frame_infeasible(self):
        pose, mask = _setup()
        checker = ContainmentChecker(mask, BODY)
        assert not checker.check(pose.translated(200.0, 0.0).to_genes())

    def test_batch(self):
        pose, mask = _setup()
        checker = ContainmentChecker(mask, BODY)
        genes = np.stack([pose.to_genes(), pose.translated(50, 0).to_genes()])
        result = checker.check(genes)
        assert result.tolist() == [True, False]

    def test_margin_loosens(self):
        pose, mask = _setup()
        nudged = pose.translated(2.0, 0.0)
        strict = ContainmentChecker(mask, BODY, margin=0, min_inside_fraction=1.0)
        loose = ContainmentChecker(mask, BODY, margin=3, min_inside_fraction=1.0)
        assert loose.check_pose(nudged) or not strict.check_pose(nudged)
        assert loose.check_pose(pose)

    def test_parameter_validation(self):
        _, mask = _setup()
        with pytest.raises(ValueError):
            ContainmentChecker(mask, BODY, margin=-1)
        with pytest.raises(ValueError):
            ContainmentChecker(mask, BODY, samples_per_stick=0)
        with pytest.raises(ValueError):
            ContainmentChecker(mask, BODY, min_inside_fraction=1.5)


class TestInsideFraction:
    def test_true_pose_full(self):
        pose, mask = _setup()
        checker = ContainmentChecker(mask, BODY)
        assert checker.inside_fraction(pose.to_genes()) == pytest.approx(1.0)

    def test_far_pose_zero(self):
        pose, mask = _setup()
        checker = ContainmentChecker(mask, BODY)
        assert checker.inside_fraction(pose.translated(80, 0).to_genes()) == 0.0

    def test_monotone_with_offset(self):
        pose, mask = _setup()
        checker = ContainmentChecker(mask, BODY)
        fractions = [
            checker.inside_fraction(pose.translated(dx, 0.0).to_genes())
            for dx in (0.0, 8.0, 20.0, 60.0)
        ]
        assert fractions == sorted(fractions, reverse=True)

    def test_batch_shape(self):
        pose, mask = _setup()
        checker = ContainmentChecker(mask, BODY)
        out = checker.inside_fraction(np.stack([pose.to_genes()] * 3))
        assert out.shape == (3,)
