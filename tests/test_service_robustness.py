"""Tests for the hardened service: 413/503/504, degraded 200s, /health."""

import json
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro.errors as errors_module
from repro.errors import ReproError
from repro.ga.engine import GAConfig
from repro.ga.temporal import TrackerConfig
from repro.model.annotation import simulate_human_annotation
from repro.model.fitness import FitnessConfig
from repro.pipeline import AnalyzerConfig
from repro.serialization import annotation_to_dict
from repro.service import (
    ServiceConfig,
    ServiceHandle,
    encode_video,
    request_analysis,
)


def _fast_config():
    return AnalyzerConfig(
        tracker=TrackerConfig(
            ga=GAConfig(population_size=24, max_generations=8, patience=4),
            fitness=FitnessConfig(max_points=400),
        )
    )


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


def _post_raw(url, body: bytes, headers=None):
    """POST and return (status, payload, headers) without raising."""
    request = urllib.request.Request(
        url,
        data=body,
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


def _analyze_body(video, annotation=None, seed=0):
    body = {"video_npz_b64": encode_video(video), "seed": seed}
    if annotation is not None:
        body["annotation"] = annotation_to_dict(annotation)
    return json.dumps(body).encode("utf-8")


class _StubAnalyzer:
    """Stand-in analyzer whose behaviour the test scripts."""

    def __init__(self, error=None, delay=0.0):
        self.config = AnalyzerConfig()
        self._error = error
        self._delay = delay

    def analyze(self, *args, **kwargs):
        if self._delay:
            time.sleep(self._delay)
        if self._error is not None:
            raise self._error
        raise AssertionError("stub analyzer has no success path")


class TestBodyLimit:
    def test_oversized_body_is_413(self, short_jump):
        handle = ServiceHandle(
            service_config=ServiceConfig(max_body_bytes=512)
        ).start()
        try:
            status, payload, headers = _post_raw(
                f"{handle.address}/analyze", _analyze_body(short_jump.video)
            )
            assert status == 413
            assert payload["error"]["type"] == "body_too_large"
            # Draining is capped, so the connection must not be reused.
            assert headers["Connection"] == "close"
        finally:
            handle.stop()

    def test_small_bodies_pass_the_limit(self):
        handle = ServiceHandle(
            service_config=ServiceConfig(max_body_bytes=512)
        ).start()
        try:
            status, payload, _ = _post_raw(f"{handle.address}/analyze", b"{}")
            assert status == 400  # missing video, but not 413
        finally:
            handle.stop()


class TestConcurrencyGate:
    def test_analyzer_construction_error_is_400_not_a_leaked_slot(
        self, short_jump
    ):
        """A config that survives parsing but fails JumpAnalyzer
        construction (robustness stage names are validated there) must
        answer a structured 400 without consuming a concurrency slot —
        repeat offenders must not wedge the gate into permanent 503s.
        """
        handle = ServiceHandle(
            service_config=ServiceConfig(max_concurrent=1)
        ).start()
        try:
            body = json.dumps(
                {
                    "video_npz_b64": encode_video(short_jump.video),
                    "config": {"robustness": {"retry_stages": ["bogus"]}},
                }
            ).encode("utf-8")
            for _ in range(3):  # would exhaust a leaked single-slot gate
                status, payload, _ = _post_raw(
                    f"{handle.address}/analyze", body
                )
                assert status == 400
                assert payload["error"]["type"] == "bad_config"
                assert "bogus" in payload["error"]["message"]
            # The slot was never taken: the gate still admits a request.
            assert handle._server.gate.acquire(blocking=False)
            handle._server.gate.release()
        finally:
            handle.stop()

    def test_busy_service_is_503_with_retry_after(self, short_jump):
        handle = ServiceHandle(
            service_config=ServiceConfig(
                max_concurrent=1, retry_after_seconds=7
            )
        ).start()
        try:
            # Occupy the single slot so the next request is refused.
            assert handle._server.gate.acquire(blocking=False)
            try:
                status, payload, headers = _post_raw(
                    f"{handle.address}/analyze",
                    _analyze_body(short_jump.video),
                )
                assert status == 503
                assert payload["error"]["type"] == "overloaded"
                assert headers["Retry-After"] == "7"
            finally:
                handle._server.gate.release()
        finally:
            handle.stop()


class TestDeadline:
    def test_slow_analysis_is_504(self, short_jump):
        handle = ServiceHandle(
            service_config=ServiceConfig(deadline_seconds=0.05)
        ).start()
        handle._server.analyzer = _StubAnalyzer(delay=0.6)
        try:
            status, payload, _ = _post_raw(
                f"{handle.address}/analyze", _analyze_body(short_jump.video)
            )
            assert status == 504
            assert payload["error"]["type"] == "deadline_exceeded"
            # The timeout lands in /health's last_error.
            _, health = _get(f"{handle.address}/health")
            assert health["last_error"]["type"] == "deadline_exceeded"
        finally:
            handle.stop()


REPRO_ERRORS = sorted(
    (
        obj
        for name, obj in vars(errors_module).items()
        if isinstance(obj, type) and issubclass(obj, ReproError)
    ),
    key=lambda cls: cls.__name__,
)


class TestErrorMapping:
    @pytest.mark.parametrize(
        "exc_type", REPRO_ERRORS, ids=lambda cls: cls.__name__
    )
    def test_every_repro_error_maps_to_422(self, short_jump, exc_type):
        handle = ServiceHandle().start()
        handle._server.analyzer = _StubAnalyzer(error=exc_type("kaput"))
        try:
            status, payload, _ = _post_raw(
                f"{handle.address}/analyze", _analyze_body(short_jump.video)
            )
            assert status == 422
            assert payload["error"]["type"] == "analysis_failed"
            assert "kaput" in payload["error"]["message"]
        finally:
            handle.stop()

    def test_unexpected_error_maps_to_500(self, short_jump):
        handle = ServiceHandle().start()
        handle._server.analyzer = _StubAnalyzer(error=ValueError("surprise"))
        try:
            status, payload, _ = _post_raw(
                f"{handle.address}/analyze", _analyze_body(short_jump.video)
            )
            assert status == 500
            assert payload["error"]["type"] == "internal_error"
            _, health = _get(f"{handle.address}/health")
            assert health["last_error"]["type"] == "internal_error"
        finally:
            handle.stop()

    def test_malformed_body_maps_to_400(self):
        handle = ServiceHandle().start()
        try:
            status, payload, _ = _post_raw(
                f"{handle.address}/analyze", b"not json"
            )
            assert status == 400
            assert payload["error"]["type"] == "malformed_json"
        finally:
            handle.stop()


class TestDegradedResponses:
    def test_degraded_analysis_is_200_with_block(self, short_jump):
        from repro.faults import FaultPlan, FaultSpec, inject_video_faults

        plan = FaultPlan((FaultSpec(kind="blank_silhouette"),))
        faulted = inject_video_faults(short_jump.video, plan)
        annotation = simulate_human_annotation(
            short_jump.motion.poses[0],
            short_jump.dims,
            mask=short_jump.person_masks[0],
            rng=np.random.default_rng(0),
        )
        handle = ServiceHandle(config=_fast_config()).start()
        try:
            result = request_analysis(
                handle.address,
                faulted,
                annotation_dict=annotation_to_dict(annotation),
            )
            assert result["degraded"] is True
            target = FaultSpec(kind="blank_silhouette").resolve_frame(
                len(faulted)
            )
            assert result["degradation"]["unhealthy_frames"] == [target]
            assert result["diagnostics"]["health_summary"]["extrapolated"] == 1
        finally:
            handle.stop()

    def test_clean_analysis_reports_not_degraded(self, short_jump):
        annotation = simulate_human_annotation(
            short_jump.motion.poses[0],
            short_jump.dims,
            mask=short_jump.person_masks[0],
            rng=np.random.default_rng(0),
        )
        handle = ServiceHandle(config=_fast_config()).start()
        try:
            result = request_analysis(
                handle.address,
                short_jump.video,
                annotation_dict=annotation_to_dict(annotation),
            )
            assert result["degraded"] is False
            assert "degradation" not in result
            assert result["diagnostics"]["unhealthy_frames"] == []
            _, health = _get(f"{handle.address}/health")
            assert health["in_flight"] == 0
        finally:
            handle.stop()
