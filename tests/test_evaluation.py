"""Tests for corpus-level evaluation (fast analyzer config)."""

import pytest

from repro.evaluation import (
    DetectionEvaluation,
    StandardStats,
    evaluate_detection,
    evaluate_tracking,
)
from repro.ga.engine import GAConfig
from repro.ga.temporal import TrackerConfig
from repro.model.fitness import FitnessConfig
from repro.pipeline import AnalyzerConfig
from repro.scoring.standards import Standard
from repro.video.synthesis import SyntheticJumpConfig, synthesize_jump


def _fast_config() -> AnalyzerConfig:
    return AnalyzerConfig(
        tracker=TrackerConfig(
            ga=GAConfig(population_size=24, max_generations=8, patience=4),
            fitness=FitnessConfig(max_points=400),
            containment_margin=1,
            min_inside_fraction=0.95,
            containment_samples=7,
        )
    )


class TestStandardStats:
    def test_recall(self):
        stats = StandardStats(Standard.E1, true_positive=3, false_negative=1)
        assert stats.recall == pytest.approx(0.75)

    def test_false_alarm_rate(self):
        stats = StandardStats(Standard.E1, false_positive=1, true_negative=3)
        assert stats.false_alarm_rate == pytest.approx(0.25)

    def test_degenerate(self):
        stats = StandardStats(Standard.E2)
        assert stats.recall == 1.0
        assert stats.false_alarm_rate == 0.0


class TestDetectionEvaluation:
    def test_aggregates(self):
        per = (
            StandardStats(Standard.E1, true_positive=2, false_negative=0,
                          false_positive=0, true_negative=2),
            StandardStats(Standard.E2, true_positive=0, false_negative=2,
                          false_positive=1, true_negative=1),
        )
        evaluation = DetectionEvaluation(per_standard=per, num_jumps=4)
        assert evaluation.overall_recall == pytest.approx(0.5)
        assert evaluation.overall_false_alarm_rate == pytest.approx(1 / 4)


class TestEndToEndCorpus:
    def test_small_corpus(self):
        jumps = [
            synthesize_jump(SyntheticJumpConfig(seed=0)),
            synthesize_jump(SyntheticJumpConfig(seed=1, violated=(Standard.E1,))),
        ]
        evaluation = evaluate_detection(jumps, config=_fast_config())
        assert evaluation.num_jumps == 2
        # all counts must add up to the corpus size per standard
        for stats in evaluation.per_standard:
            total = (
                stats.true_positive
                + stats.false_negative
                + stats.false_positive
                + stats.true_negative
            )
            assert total == 2

    def test_tracking_corpus(self):
        jumps = [synthesize_jump(SyntheticJumpConfig(seed=3))]
        evaluation = evaluate_tracking(jumps, config=_fast_config())
        assert evaluation.num_jumps == 1
        assert 0 < evaluation.mean_joint_error < 15.0
        assert len(evaluation.per_stick_angle_error) == 8
