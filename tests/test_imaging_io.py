"""Tests for PGM/PPM/PNG/NPZ image I/O."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.io import (
    load_masks_npz,
    read_pgm,
    read_ppm,
    save_masks_npz,
    write_mask_pgm,
    write_pgm,
    write_png,
    write_ppm,
)


class TestPpmRoundTrip:
    def test_rgb_roundtrip(self, tmp_path, rng):
        image = rng.random((6, 8, 3))
        path = tmp_path / "img.ppm"
        write_ppm(path, image)
        back = read_ppm(path)
        assert back.shape == image.shape
        assert np.abs(back - image).max() <= 1 / 255 + 1e-9

    def test_reject_reading_pgm_as_ppm(self, tmp_path):
        path = tmp_path / "img.pgm"
        write_pgm(path, np.zeros((4, 4)))
        with pytest.raises(ImageError):
            read_ppm(path)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "junk.ppm"
        path.write_bytes(b"not an image")
        with pytest.raises(ImageError):
            read_ppm(path)


class TestPgmRoundTrip:
    def test_gray_roundtrip(self, tmp_path, rng):
        image = rng.random((5, 7))
        path = tmp_path / "img.pgm"
        write_pgm(path, image)
        back = read_pgm(path)
        assert np.abs(back - image).max() <= 1 / 255 + 1e-9

    def test_mask_write(self, tmp_path):
        mask = np.eye(4, dtype=bool)
        path = tmp_path / "mask.pgm"
        write_mask_pgm(path, mask)
        back = read_pgm(path)
        assert ((back > 0.5) == mask).all()


class TestPng:
    def test_png_signature_and_size(self, tmp_path, rng):
        path = tmp_path / "img.png"
        write_png(path, rng.random((8, 10, 3)))
        data = path.read_bytes()
        assert data[:8] == b"\x89PNG\r\n\x1a\n"
        assert b"IHDR" in data and b"IEND" in data

    def test_grayscale_png(self, tmp_path):
        path = tmp_path / "gray.png"
        write_png(path, np.linspace(0, 1, 20).reshape(4, 5))
        assert path.stat().st_size > 50

    def test_bad_shape(self, tmp_path):
        with pytest.raises(ImageError):
            write_png(tmp_path / "x.png", np.zeros((2, 2, 4)))


class TestMaskArchive:
    def test_roundtrip_order(self, tmp_path, rng):
        masks = [rng.random((6, 6)) > 0.5 for _ in range(5)]
        path = tmp_path / "masks.npz"
        save_masks_npz(path, masks)
        loaded = load_masks_npz(path)
        assert len(loaded) == 5
        for original, back in zip(masks, loaded):
            assert (original == back).all()
