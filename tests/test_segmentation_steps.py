"""Tests for subtraction (Step 2), cleanup (Steps 3-4) and the HSV
shadow mask (Step 5)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.imaging.image import blank_rgb
from repro.segmentation.cleanup import CleanupConfig, clean_foreground
from repro.segmentation.shadow import ShadowMaskConfig, remove_shadows, shadow_mask
from repro.segmentation.subtraction import (
    SubtractionConfig,
    difference_image,
    subtract_background,
)


class TestSubtraction:
    def test_detects_changed_block(self):
        background = blank_rgb(10, 10, (0.5, 0.5, 0.5))
        frame = background.copy()
        frame[3:6, 3:6] = (0.9, 0.5, 0.5)
        mask = subtract_background(frame, background)
        assert mask[4, 4] and mask.sum() == 9

    def test_threshold_respected(self):
        background = blank_rgb(4, 4, (0.5, 0.5, 0.5))
        frame = background + 0.05
        assert not subtract_background(
            frame, background, SubtractionConfig(threshold=0.09)
        ).any()
        assert subtract_background(
            frame, background, SubtractionConfig(threshold=0.04)
        ).all()

    def test_difference_image_max_channel(self):
        background = blank_rgb(2, 2, (0.2, 0.2, 0.2))
        frame = background.copy()
        frame[0, 0] = (0.2, 0.7, 0.3)
        diff = difference_image(frame, background)
        assert diff[0, 0] == pytest.approx(0.5)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SubtractionConfig(threshold=1.5)


class TestCleanup:
    def test_stages_returned_in_order(self):
        rng = np.random.default_rng(0)
        mask = rng.random((30, 30)) > 0.85
        mask[5:20, 5:15] = True
        stages = clean_foreground(mask, CleanupConfig(min_spot_area=20))
        assert stages.after_noise_removal.sum() <= mask.sum()
        assert stages.after_spot_removal.sum() <= stages.after_noise_removal.sum()
        assert stages.after_hole_fill.sum() >= stages.after_spot_removal.sum()

    def test_noise_pixels_removed_blob_kept(self):
        mask = np.zeros((20, 20), dtype=bool)
        mask[5:15, 5:12] = True
        mask[1, 18] = True  # isolated noise
        stages = clean_foreground(mask)
        assert not stages.after_noise_removal[1, 18]
        assert stages.after_hole_fill[10, 8]

    def test_small_spot_removed(self):
        mask = np.zeros((30, 30), dtype=bool)
        mask[5:20, 5:15] = True  # 150 px person
        mask[25:28, 25:28] = True  # 9 px spot
        stages = clean_foreground(mask, CleanupConfig(min_spot_area=30))
        assert not stages.after_spot_removal[26, 26]
        assert stages.after_spot_removal[10, 10]

    def test_hole_filled(self):
        mask = np.zeros((12, 12), dtype=bool)
        mask[2:10, 2:10] = True
        mask[5, 5] = False
        stages = clean_foreground(mask)
        assert stages.after_hole_fill[5, 5]

    def test_fill_all_holes_extension(self):
        mask = np.zeros((14, 14), dtype=bool)
        mask[2:12, 2:12] = True
        mask[5:8, 5:8] = False  # 3x3 hole: 4-rule cannot fill it
        plain = clean_foreground(mask, CleanupConfig(min_neighbors=0))
        assert not plain.after_hole_fill[6, 6]
        full = clean_foreground(
            mask, CleanupConfig(min_neighbors=0, fill_all_holes=True)
        )
        assert full.after_hole_fill[6, 6]

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CleanupConfig(min_neighbors=9)
        with pytest.raises(ConfigurationError):
            CleanupConfig(min_spot_area=-1)


class TestShadowMask:
    def _scene(self):
        background = blank_rgb(10, 10, (0.5, 0.45, 0.4))
        frame = background.copy()
        # shadow: value scaled, hue/saturation kept
        frame[6:9, :] *= 0.6
        # person: different hue entirely
        frame[1:4, 1:4] = (0.1, 0.2, 0.8)
        foreground = np.zeros((10, 10), dtype=bool)
        foreground[6:9, :] = True
        foreground[1:4, 1:4] = True
        return frame, background, foreground

    def test_eq1_separates_shadow_from_person(self):
        frame, background, foreground = self._scene()
        detected = shadow_mask(frame, background, foreground)
        assert detected[7, 5]
        assert not detected[2, 2]

    def test_only_foreground_can_be_shadow(self):
        frame, background, foreground = self._scene()
        detected = shadow_mask(frame, background, foreground)
        assert not (detected & ~foreground).any()

    def test_remove_shadows_returns_person(self):
        frame, background, foreground = self._scene()
        person, detected = remove_shadows(frame, background, foreground)
        assert person[2, 2] and not person[7, 5]
        assert (person | detected).sum() == foreground.sum()

    def test_value_ratio_bounds(self):
        frame, background, foreground = self._scene()
        # too-dark region (below alpha) is not shadow
        frame[6:9, :] = background[6:9, :] * 0.2
        detected = shadow_mask(
            frame, background, foreground, ShadowMaskConfig(alpha=0.4, beta=0.9)
        )
        assert not detected[7, 5]

    def test_hue_condition(self):
        frame, background, foreground = self._scene()
        config = ShadowMaskConfig(tau_h=5.0)
        # rotate hue of the shadow strip far away
        frame[6:9, :] = frame[6:9, :][..., ::-1]
        detected = shadow_mask(frame, background, foreground, config)
        assert not detected[7, 5]

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ShadowMaskConfig(alpha=0.9, beta=0.4)
        with pytest.raises(ConfigurationError):
            ShadowMaskConfig(tau_s=0.0)
        with pytest.raises(ConfigurationError):
            ShadowMaskConfig(tau_h=200.0)
