"""Tests for trajectory analysis, event detection and kinematics."""

import numpy as np
import pytest

from repro.analysis.events import detect_events, foot_clearance
from repro.analysis.kinematics import (
    center_of_mass,
    center_of_mass_track,
    fit_flight_parabola,
)
from repro.analysis.trajectory import PoseTrajectory, unwrap_degrees
from repro.errors import ScoringError
from repro.model.pose import StickPose
from repro.model.sticks import default_body

BODY = default_body(72.0)


class TestTrajectory:
    def test_roundtrip(self, jump):
        trajectory = PoseTrajectory.from_poses(jump.motion.poses)
        back = trajectory.to_poses()
        for a, b in zip(jump.motion.poses, back):
            assert a.x0 == pytest.approx(b.x0)
            assert np.allclose(a.angles_deg, b.angles_deg)

    def test_unwrap_removes_jumps(self):
        angles = np.array([[350.0], [355.0], [2.0], [8.0]])
        unwrapped = unwrap_degrees(angles)
        assert (np.abs(np.diff(unwrapped[:, 0])) < 180).all()
        assert unwrapped[2, 0] == pytest.approx(362.0)

    def test_smoothing_reduces_noise(self, rng):
        t = np.linspace(0, 1, 30)
        clean = 90 + 30 * np.sin(2 * np.pi * t)
        noisy = clean + rng.normal(0, 5, 30)
        poses = [
            StickPose.standing(0, 0).with_angle(0, a) for a in noisy
        ]
        trajectory = PoseTrajectory.from_poses(poses)
        smooth = trajectory.smoothed(5)
        raw_err = np.abs(trajectory.angles[:, 0] - clean).mean()
        smooth_err = np.abs(smooth.angles[:, 0] - clean).mean()
        assert smooth_err < raw_err

    def test_smoothing_validation(self, jump):
        trajectory = PoseTrajectory.from_poses(jump.motion.poses)
        with pytest.raises(ScoringError):
            trajectory.smoothed(4)

    def test_velocities_shape(self, jump):
        trajectory = PoseTrajectory.from_poses(jump.motion.poses)
        assert trajectory.angular_velocity().shape == (19, 8)
        assert trajectory.center_velocity().shape == (19, 2)


class TestEvents:
    def test_detects_takeoff_near_truth(self, jump):
        events = detect_events(jump.motion.poses, jump.dims)
        assert abs(events.takeoff_frame - jump.motion.takeoff_frame) <= 1

    def test_landing_after_takeoff(self, jump):
        events = detect_events(jump.motion.poses, jump.dims)
        assert events.takeoff_frame < events.landing_frame
        assert events.takeoff_frame <= events.peak_frame <= events.landing_frame

    def test_ground_height_estimate(self, jump):
        events = detect_events(jump.motion.poses, jump.dims)
        assert events.ground_height == pytest.approx(
            jump.motion.params.ground_level, abs=2.5
        )

    def test_never_airborne_falls_back_to_midpoint(self):
        poses = [StickPose.standing(k, 30.0) for k in range(8)]
        events = detect_events(poses, BODY)
        assert events.takeoff_frame == 4

    def test_too_few_poses(self):
        with pytest.raises(ScoringError):
            detect_events([StickPose.standing(0, 0)] * 2, BODY)

    def test_foot_clearance_monotone_with_height(self):
        low = StickPose.standing(0.0, 30.0)
        high = StickPose.standing(0.0, 45.0)
        clearances = foot_clearance([low, high], BODY)
        assert clearances[1] - clearances[0] == pytest.approx(15.0)


class TestKinematics:
    def test_com_inside_body(self):
        pose = StickPose.standing(50.0, 60.0)
        com = center_of_mass(pose, BODY)
        assert abs(com[0] - 50.0) < 6.0
        # CoM of a standing human sits a bit below the trunk centre
        assert 30.0 < com[1] < 70.0

    def test_com_track_shape(self, jump):
        track = center_of_mass_track(jump.motion.poses, jump.dims)
        assert track.shape == (jump.num_frames, 2)

    def test_flight_parabola_fit(self, jump):
        events = detect_events(jump.motion.poses, jump.dims)
        fit = fit_flight_parabola(
            jump.motion.poses, jump.dims,
            events.takeoff_frame, events.landing_frame,
        )
        assert fit.apex_height > 2.0
        assert fit.horizontal_velocity > 2.0
        assert fit.gravity > 0.0
        assert fit.residual_rms < 3.0

    def test_parabola_window_validation(self, jump):
        with pytest.raises(ScoringError):
            fit_flight_parabola(jump.motion.poses, jump.dims, 10, 10)
        with pytest.raises(ScoringError):
            fit_flight_parabola(jump.motion.poses, jump.dims, 10, 11)
