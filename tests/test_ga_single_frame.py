"""Tests for the single-frame (Shoji-style) GA baseline."""

import numpy as np
import pytest

from repro.errors import TrackingError
from repro.ga.engine import GAConfig
from repro.ga.operators import OperatorConfig
from repro.ga.single_frame import (
    SingleFrameConfig,
    estimate_single_frame,
)
from repro.model.fitness import FitnessConfig, SilhouetteFitness
from repro.model.pose import StickPose
from repro.model.sticks import default_body
from repro.video.synthesis.render import person_mask_for_pose

BODY = default_body(60.0)


def _small_config(generations=30):
    return SingleFrameConfig(
        ga=GAConfig(
            population_size=40,
            max_generations=generations,
            patience=None,
            operators=OperatorConfig(
                crossover_rate=0.2,
                mutation_rate=0.15,
                center_sigma=3.0,
                angle_sigma=25.0,
            ),
        ),
        fitness=FitnessConfig(max_points=400),
    )


class TestSingleFrame:
    def test_estimates_standing_pose(self):
        pose = StickPose.standing(60.0, 50.0)
        mask = person_mask_for_pose(pose, BODY, (120, 160))
        estimate = estimate_single_frame(
            mask, BODY, _small_config(60), rng=np.random.default_rng(0)
        )
        # With a small budget we only require clear progress toward a
        # plausible pose: better fitness than a random chromosome and a
        # centre near the body.
        assert abs(estimate.pose.x0 - pose.x0) < 12.0
        fitness = SilhouetteFitness(mask, BODY, FitnessConfig(max_points=400))
        assert estimate.fitness < 1.0

    def test_needs_many_generations(self):
        """The paper's point: without a temporal prior convergence is slow."""
        pose = StickPose.standing(60.0, 50.0)
        mask = person_mask_for_pose(pose, BODY, (120, 160))
        short = estimate_single_frame(
            mask, BODY, _small_config(5), rng=np.random.default_rng(1)
        )
        long = estimate_single_frame(
            mask, BODY, _small_config(60), rng=np.random.default_rng(1)
        )
        assert long.search.best_fitness <= short.search.best_fitness
        assert long.search.generation_of_best > 2

    def test_empty_mask_rejected(self):
        with pytest.raises(TrackingError):
            estimate_single_frame(np.zeros((10, 10), dtype=bool), BODY)

    def test_penalty_weight_validated(self):
        with pytest.raises(TrackingError):
            SingleFrameConfig(penalty_weight=-1.0)
