"""Tests for distance transforms."""

import numpy as np
import pytest

from repro.imaging.transform import (
    chamfer_distance,
    euclidean_distance_exact,
    signed_distance,
)


class TestChamfer:
    def test_zero_on_sources(self):
        mask = np.zeros((7, 7), dtype=bool)
        mask[3, 3] = True
        dist = chamfer_distance(mask)
        assert dist[3, 3] == 0.0

    def test_axial_distances_exact(self):
        mask = np.zeros((9, 9), dtype=bool)
        mask[4, 4] = True
        dist = chamfer_distance(mask)
        assert dist[4, 8] == pytest.approx(4.0)
        assert dist[0, 4] == pytest.approx(4.0)

    def test_diagonal_approximation(self):
        mask = np.zeros((9, 9), dtype=bool)
        mask[4, 4] = True
        dist = chamfer_distance(mask)
        # 3-4 chamfer: diagonal step costs 4/3 vs true sqrt(2)
        assert dist[0, 0] == pytest.approx(4 * 4 / 3)

    def test_close_to_euclidean(self, rng):
        mask = rng.random((20, 20)) > 0.9
        if not mask.any():
            mask[5, 5] = True
        cham = chamfer_distance(mask)
        exact = euclidean_distance_exact(mask)
        error = np.abs(cham - exact)
        # 3-4 chamfer error bound is ~6% of the distance
        assert (error <= 0.09 * exact + 1e-9).all()

    def test_background_distance(self):
        mask = np.ones((5, 5), dtype=bool)
        mask[2, 2] = False
        dist = chamfer_distance(mask, to_foreground=False)
        assert dist[2, 2] == 0.0
        assert dist[2, 3] == pytest.approx(1.0)

    def test_empty_sources_sentinel(self):
        dist = chamfer_distance(np.zeros((4, 4), dtype=bool))
        assert (dist > 1e9).all()


class TestSignedDistance:
    def test_sign_convention(self):
        mask = np.zeros((9, 9), dtype=bool)
        mask[3:6, 3:6] = True
        sd = signed_distance(mask)
        assert sd[4, 4] < 0
        assert sd[0, 0] > 0

    def test_magnitude_at_boundary(self):
        mask = np.zeros((7, 7), dtype=bool)
        mask[2:5, 2:5] = True
        sd = signed_distance(mask)
        # boundary pixels are 1 away from the outside
        assert sd[2, 3] == pytest.approx(-1.0)
