"""Tests for flaw injection: each flaw must break exactly its rule."""

import pytest

from repro.errors import ConfigurationError
from repro.model.sticks import default_body
from repro.scoring.report import JumpScorer
from repro.scoring.standards import Standard
from repro.video.synthesis.flaws import all_standards, apply_flaws, violate
from repro.video.synthesis.motion import generate_jump_motion, good_style

BODY = default_body(72.0)


def _rule_failures(style):
    motion = generate_jump_motion(BODY, style=style)
    report = JumpScorer().score(motion.poses, takeoff_frame=motion.takeoff_frame)
    return [result.rule.rule_id for result in report.failed]


class TestCleanStyle:
    def test_good_style_passes_all_rules(self):
        assert _rule_failures(good_style()) == []


class TestSingleFlaws:
    @pytest.mark.parametrize("standard", list(Standard))
    def test_flaw_breaks_exactly_its_rule(self, standard):
        style = violate(good_style(), standard)
        expected = f"R{standard.name[1]}"
        assert _rule_failures(style) == [expected]


class TestCombinedFlaws:
    def test_two_flaws_break_two_rules(self):
        style = apply_flaws(good_style(), [Standard.E1, Standard.E6])
        assert _rule_failures(style) == ["R1", "R6"]

    def test_all_standards_listed(self):
        assert len(all_standards()) == 7

    def test_unknown_flaw_rejected(self):
        with pytest.raises((ConfigurationError, KeyError)):
            violate(good_style(), "E9")  # type: ignore[arg-type]
