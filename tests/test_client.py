"""Tests for :class:`repro.client.ServiceClient` and the legacy shim."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.client import (
    ClientError,
    JobFailedError,
    JobTimeoutError,
    ServiceClient,
    ServiceError,
)
from repro.config import config_hash, config_to_dict
from repro.ga.engine import GAConfig
from repro.ga.temporal import TrackerConfig
from repro.model.fitness import FitnessConfig
from repro.pipeline import AnalyzerConfig, JumpAnalyzer
from repro.service import ServiceHandle, request_analysis


def _fast_config():
    return AnalyzerConfig(
        tracker=TrackerConfig(
            ga=GAConfig(population_size=24, max_generations=8, patience=4),
            fitness=FitnessConfig(max_points=400),
        )
    )


@pytest.fixture(scope="module")
def fast_service(short_jump):
    with ServiceHandle(config=_fast_config()) as handle:
        yield handle


class TestInfoEndpoints:
    def test_version(self, fast_service):
        import repro

        client = ServiceClient(fast_service.address)
        version = client.version()
        assert version["package_version"] == repro.__version__
        assert version["api_version"] == "v1"
        expected = config_hash(config_to_dict(_fast_config()))
        assert version["config_hash"] == expected

    def test_health_standards_config_metrics(self, fast_service):
        client = ServiceClient(fast_service.address)
        assert client.health()["status"] == "ok"
        assert len(client.standards()["rules"]) == 7
        assert client.config()["config_hash"] == config_hash(
            config_to_dict(_fast_config())
        )
        assert "jobs" in client.metrics()


class TestTypedErrors:
    def test_service_error_carries_type_and_status(self, fast_service):
        client = ServiceClient(fast_service.address)
        with pytest.raises(ServiceError) as excinfo:
            client.job("j99999-0000000000")
        assert excinfo.value.status == 404
        assert excinfo.value.error_type == "job_not_found"

    def test_transport_error_is_client_error(self):
        client = ServiceClient("http://127.0.0.1:1", timeout=0.5)
        with pytest.raises(ClientError):
            client.health()

    def test_wait_timeout_raises(self, fast_service, short_jump):
        # waiting zero seconds on a real job cannot finish in time
        client = ServiceClient(fast_service.address)
        job = client.submit(short_jump.video, seed=0)
        try:
            with pytest.raises(JobTimeoutError):
                client.wait(job["id"], timeout=0.0, poll_interval=0.01)
        finally:
            client.cancel(job["id"])
            # drain so the module-scoped service is clean for other tests
            try:
                client.wait(job["id"], timeout=60.0)
            except (JobFailedError, JobTimeoutError):
                pass


class TestEndToEndParity:
    def test_wait_matches_direct_analysis(self, fast_service, short_jump):
        client = ServiceClient(fast_service.address)
        job = client.submit(short_jump.video, seed=0)
        remote = client.wait(job["id"], timeout=300.0)

        direct = JumpAnalyzer(_fast_config()).analyze(
            short_jump.video, rng=np.random.default_rng(0)
        )
        assert remote["config_hash"] == direct.config_hash
        assert remote["report"]["score"] == direct.report.score
        assert (
            remote["measurement"]["distance_px"]
            == direct.measurement.distance
        )
        # the job record advertises the same config hash
        assert client.job(job["id"])["config_hash"] == direct.config_hash

    def test_analyze_matches_submit_wait(self, fast_service, short_jump):
        client = ServiceClient(fast_service.address)
        sync = client.analyze(short_jump.video, seed=0)
        job = client.submit(short_jump.video, seed=0)
        async_result = client.wait(job["id"], timeout=300.0)
        assert sync["report"] == async_result["report"]
        assert sync["config_hash"] == async_result["config_hash"]


class TestDeprecatedShim:
    def test_request_analysis_warns_and_works(self, fast_service, short_jump):
        with pytest.warns(DeprecationWarning, match="ServiceClient"):
            result = request_analysis(
                fast_service.address, short_jump.video, seed=0
            )
        assert result["report"]["score"] >= 0.0
