"""Tests for connected-component labelling and spot removal."""

import numpy as np
import pytest

from repro.imaging.components import (
    component_stats,
    dominant_components,
    label_components,
    largest_component,
    remove_small_components,
)


def _mask_from_string(art: str) -> np.ndarray:
    rows = [line.strip() for line in art.strip().splitlines()]
    return np.array([[ch == "#" for ch in row] for row in rows])


class TestLabelComponents:
    def test_empty(self):
        labels, count = label_components(np.zeros((4, 4), dtype=bool))
        assert count == 0 and not labels.any()

    def test_single_blob(self):
        mask = _mask_from_string(
            """
            .##.
            .##.
            ....
            """
        )
        labels, count = label_components(mask)
        assert count == 1
        assert (labels[mask] == 1).all()

    def test_two_blobs_4_connectivity(self):
        mask = _mask_from_string(
            """
            #..
            .#.
            ..#
            """
        )
        _, count4 = label_components(mask, connectivity=4)
        _, count8 = label_components(mask, connectivity=8)
        assert count4 == 3
        assert count8 == 1

    def test_u_shape_merges(self):
        # A U shape requires the union-find merge pass.
        mask = _mask_from_string(
            """
            #.#
            #.#
            ###
            """
        )
        labels, count = label_components(mask, connectivity=4)
        assert count == 1
        assert set(np.unique(labels)) == {0, 1}

    def test_labels_compact(self):
        rng = np.random.default_rng(2)
        mask = rng.random((20, 20)) > 0.7
        labels, count = label_components(mask)
        present = set(np.unique(labels)) - {0}
        assert present == set(range(1, count + 1))


class TestComponentStats:
    def test_area_and_centroid(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[2:4, 2:4] = True
        labels, count = label_components(mask)
        stats = component_stats(labels, count)
        assert len(stats) == 1
        assert stats[0].area == 4
        assert stats[0].centroid == (2.5, 2.5)
        assert stats[0].bbox.height == 2


class TestRemoveSmall:
    def test_small_spot_removed(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[1:5, 1:5] = True  # area 16
        mask[8, 8] = True  # area 1
        out = remove_small_components(mask, min_area=5)
        assert out[2, 2] and not out[8, 8]

    def test_min_area_one_keeps_all(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = True
        assert remove_small_components(mask, min_area=1).any()


class TestLargestAndDominant:
    def test_largest(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[0:2, 0:2] = True  # 4 px
        mask[5:9, 5:9] = True  # 16 px
        out = largest_component(mask)
        assert out[6, 6] and not out[0, 0]

    def test_dominant_keeps_near_equal_parts(self):
        mask = np.zeros((10, 12), dtype=bool)
        mask[1:5, 1:5] = True  # 16 px
        mask[6:9, 6:11] = True  # 15 px
        mask[0, 11] = True  # 1 px debris
        out = dominant_components(mask, keep_fraction=0.3)
        assert out[2, 2] and out[7, 7] and not out[0, 11]

    def test_dominant_empty(self):
        assert not dominant_components(np.zeros((3, 3), dtype=bool)).any()

    def test_dominant_validates_fraction(self):
        with pytest.raises(ValueError):
            dominant_components(np.zeros((3, 3), dtype=bool), keep_fraction=0.0)
