"""Tests for connected-component labelling and spot removal."""

import numpy as np
import pytest

from repro.imaging.components import (
    component_stats,
    dominant_components,
    label_components,
    largest_component,
    remove_small_components,
    top_n_components,
)


def _mask_from_string(art: str) -> np.ndarray:
    rows = [line.strip() for line in art.strip().splitlines()]
    return np.array([[ch == "#" for ch in row] for row in rows])


class TestLabelComponents:
    def test_empty(self):
        labels, count = label_components(np.zeros((4, 4), dtype=bool))
        assert count == 0 and not labels.any()

    def test_single_blob(self):
        mask = _mask_from_string(
            """
            .##.
            .##.
            ....
            """
        )
        labels, count = label_components(mask)
        assert count == 1
        assert (labels[mask] == 1).all()

    def test_two_blobs_4_connectivity(self):
        mask = _mask_from_string(
            """
            #..
            .#.
            ..#
            """
        )
        _, count4 = label_components(mask, connectivity=4)
        _, count8 = label_components(mask, connectivity=8)
        assert count4 == 3
        assert count8 == 1

    def test_u_shape_merges(self):
        # A U shape requires the union-find merge pass.
        mask = _mask_from_string(
            """
            #.#
            #.#
            ###
            """
        )
        labels, count = label_components(mask, connectivity=4)
        assert count == 1
        assert set(np.unique(labels)) == {0, 1}

    def test_labels_compact(self):
        rng = np.random.default_rng(2)
        mask = rng.random((20, 20)) > 0.7
        labels, count = label_components(mask)
        present = set(np.unique(labels)) - {0}
        assert present == set(range(1, count + 1))


class TestComponentStats:
    def test_area_and_centroid(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[2:4, 2:4] = True
        labels, count = label_components(mask)
        stats = component_stats(labels, count)
        assert len(stats) == 1
        assert stats[0].area == 4
        assert stats[0].centroid == (2.5, 2.5)
        assert stats[0].bbox.height == 2


class TestRemoveSmall:
    def test_small_spot_removed(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[1:5, 1:5] = True  # area 16
        mask[8, 8] = True  # area 1
        out = remove_small_components(mask, min_area=5)
        assert out[2, 2] and not out[8, 8]

    def test_min_area_one_keeps_all(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = True
        assert remove_small_components(mask, min_area=1).any()


class TestLargestAndDominant:
    def test_largest(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[0:2, 0:2] = True  # 4 px
        mask[5:9, 5:9] = True  # 16 px
        out = largest_component(mask)
        assert out[6, 6] and not out[0, 0]

    def test_dominant_keeps_near_equal_parts(self):
        mask = np.zeros((10, 12), dtype=bool)
        mask[1:5, 1:5] = True  # 16 px
        mask[6:9, 6:11] = True  # 15 px
        mask[0, 11] = True  # 1 px debris
        out = dominant_components(mask, keep_fraction=0.3)
        assert out[2, 2] and out[7, 7] and not out[0, 11]

    def test_dominant_empty(self):
        assert not dominant_components(np.zeros((3, 3), dtype=bool)).any()

    def test_dominant_validates_fraction(self):
        with pytest.raises(ValueError):
            dominant_components(np.zeros((3, 3), dtype=bool), keep_fraction=0.0)


class TestTopNComponents:
    def test_ordered_by_area_descending(self):
        mask = np.zeros((20, 20), dtype=bool)
        mask[0:2, 0:2] = True  # 4 px
        mask[5:10, 5:10] = True  # 25 px
        mask[14:17, 14:17] = True  # 9 px
        parts = top_n_components(mask, 3)
        assert [int(p.sum()) for p in parts] == [25, 9, 4]

    def test_n_truncates(self):
        mask = np.zeros((20, 20), dtype=bool)
        mask[0:2, 0:2] = True
        mask[5:10, 5:10] = True
        parts = top_n_components(mask, 1)
        assert len(parts) == 1 and int(parts[0].sum()) == 25

    def test_min_area_filters(self):
        mask = np.zeros((20, 20), dtype=bool)
        mask[0:4, 0:4] = True  # 16 px
        mask[10, 10] = True  # 1 px
        parts = top_n_components(mask, 5, min_area=5)
        assert len(parts) == 1

    def test_equal_area_ties_break_in_raster_order(self):
        # Two identical 3x3 squares: the one whose first pixel comes
        # first in raster order (top-to-bottom, left-to-right) wins.
        mask = np.zeros((20, 20), dtype=bool)
        mask[2:5, 10:13] = True  # upper-right square, first pixel (2, 10)
        mask[6:9, 1:4] = True  # lower-left square, first pixel (6, 1)
        first, second = top_n_components(mask, 2)
        assert first[2, 10] and not first[6, 1]
        assert second[6, 1] and not second[2, 10]

    def test_tie_break_deterministic_across_calls(self):
        rng = np.random.default_rng(9)
        mask = rng.random((30, 30)) > 0.6
        runs = [top_n_components(mask, 4) for _ in range(3)]
        for other in runs[1:]:
            assert len(other) == len(runs[0])
            for a, b in zip(runs[0], other):
                assert np.array_equal(a, b)

    def test_masks_are_disjoint_and_cover(self):
        rng = np.random.default_rng(3)
        mask = rng.random((25, 25)) > 0.7
        parts = top_n_components(mask, 1000)
        union = np.zeros_like(mask)
        total = 0
        for part in parts:
            assert not (union & part).any()
            union |= part
            total += int(part.sum())
        assert np.array_equal(union, mask)
        assert total == int(mask.sum())

    def test_empty_mask(self):
        assert top_n_components(np.zeros((5, 5), dtype=bool), 3) == []

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            top_n_components(np.zeros((5, 5), dtype=bool), 0)
