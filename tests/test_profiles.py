"""Movement-profile registry: identity, the second profile, end to end.

Three contracts pinned here:

1. **Registry wiring** — both shipped profiles register at import
   time, lookups resolve, unknown names are a ``ConfigurationError``
   (at the registry and at ``AnalyzerConfig`` construction).
2. **Standing long jump is a wrapper, not a rewrite** — the profile
   points at the *same objects* (``RULES``, ``Standard``, ``ADVICE``,
   event detector, distance measure) the scoring layer always used, so
   registry dispatch cannot move the paper's results.
3. **Sit-to-stand proves the engine general** — the synthetic chair
   rise scores end to end through the registry with the default
   config: all four form rules pass, the detected rise onset lands
   after the ground-truth rise start (the detector is deliberately
   late so the forward lean stays in the seated window), and the
   measured vertical rise matches the clip's geometry.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ScoringError
from repro.model.sticks import default_body
from repro.pipeline import AnalyzerConfig, JumpAnalyzer
from repro.profiles import (
    MOVEMENT_PROFILES,
    MovementProfile,
    get_profile,
    profile_names,
)
from repro.profiles.sit_to_stand import (
    SIT_TO_STAND_RULES,
    detect_sit_to_stand_events,
    measure_sit_to_stand,
)
from repro.video.synthesis import (
    SitToStandClipConfig,
    generate_sit_to_stand_poses,
    synthesize_sit_to_stand,
)


class TestRegistry:
    def test_shipped_profiles_registered_in_order(self):
        assert profile_names() == ("standing_long_jump", "sit_to_stand")

    def test_lookup(self):
        profile = get_profile("sit_to_stand")
        assert isinstance(profile, MovementProfile)
        assert profile.name == "sit_to_stand"
        assert MOVEMENT_PROFILES.get("standing_long_jump").title == (
            "Standing Long Jump"
        )

    def test_unknown_profile_is_configuration_error(self):
        with pytest.raises(ConfigurationError):
            get_profile("backflip")
        with pytest.raises(ConfigurationError):
            AnalyzerConfig(profile="backflip")

    def test_config_accepts_registered_profiles(self):
        assert AnalyzerConfig(profile="sit_to_stand").profile == "sit_to_stand"


class TestStandingLongJumpIdentity:
    """The flagship profile must be the scoring layer, verbatim."""

    def test_same_objects_not_copies(self):
        from repro.analysis.events import detect_events
        from repro.scoring.distance import measure_jump
        from repro.scoring.rules import RULES
        from repro.scoring.standards import ADVICE, Standard

        profile = get_profile("standing_long_jump")
        assert profile.rules is RULES
        assert profile.standards == tuple(Standard)
        assert profile.advice is ADVICE
        assert profile.detect_events is detect_events
        assert profile.measure is measure_jump

    def test_standing_prior_is_the_legacy_default(self):
        assert get_profile("standing_long_jump").start_angles is None

    def test_default_config_uses_it(self):
        assert AnalyzerConfig().profile == "standing_long_jump"


class TestSitToStandUnits:
    @pytest.fixture(scope="class")
    def truth(self):
        config = SitToStandClipConfig()
        dims = default_body(stature=config.stature)
        poses, rise_frame = generate_sit_to_stand_poses(dims, config)
        return poses, rise_frame, dims

    def test_event_detector_on_ground_truth(self, truth):
        poses, rise_frame, dims = truth
        events = detect_sit_to_stand_events(poses, dims)
        # Onset at half-rise is deliberately later than the blend start.
        assert rise_frame <= events.takeoff_frame <= rise_frame + 8
        assert events.landing_frame >= events.takeoff_frame
        assert events.peak_frame >= events.takeoff_frame

    def test_event_detector_needs_four_poses(self, truth):
        poses, _, dims = truth
        with pytest.raises(ScoringError):
            detect_sit_to_stand_events(poses[:3], dims)

    def test_measure_rise_on_ground_truth(self, truth):
        poses, _, dims = truth
        measurement = measure_sit_to_stand(poses, dims)
        seated, stand = poses[0].y0, max(p.y0 for p in poses)
        assert measurement.distance == pytest.approx(stand - seated)
        assert measurement.takeoff_line_x == pytest.approx(seated)
        assert measurement.landing_heel_x == pytest.approx(stand)
        assert measurement.relative_to_stature == pytest.approx(
            (stand - seated) / dims.stature
        )

    def test_rules_reference_their_standards(self):
        assert [rule.rule_id for rule in SIT_TO_STAND_RULES] == [
            "T1",
            "T2",
            "T3",
            "T4",
        ]
        stages = [rule.standard.stage for rule in SIT_TO_STAND_RULES]
        assert stages == [
            "initiation",
            "initiation",
            "air_landing",
            "air_landing",
        ]

    def test_profile_has_seated_annotation_prior(self):
        profile = get_profile("sit_to_stand")
        assert profile.start_angles is not None
        assert len(profile.start_angles) == 8
        trunk, _, _, thigh = profile.start_angles[:4]
        assert trunk > 0  # leaning forward, not the standing prior
        assert thigh < 180  # hips flexed


class TestSitToStandEndToEnd:
    @pytest.fixture(scope="class")
    def analysis(self):
        clip = synthesize_sit_to_stand()
        analyzer = JumpAnalyzer(AnalyzerConfig(profile="sit_to_stand"))
        result = analyzer.analyze(
            clip.video, rng=np.random.default_rng(clip.config.seed)
        )
        return clip, result

    def test_all_rules_pass(self, analysis):
        _, result = analysis
        assert result.report.score == 1.0
        assert [r.rule.rule_id for r in result.report.results] == [
            "T1",
            "T2",
            "T3",
            "T4",
        ]

    def test_events_and_measurement(self, analysis):
        clip, result = analysis
        assert clip.rise_frame <= result.events.takeoff_frame <= (
            clip.rise_frame + 8
        )
        # The rise is positive and bounded, but not pinned to the
        # ground-truth 10 px: a subject who never leaves their spot
        # contaminates the median background, so the segmented
        # silhouettes are fragments and the automatic annotation's
        # absolute scale (hence the px rise) is biased — the angles the
        # rules score survive, the metric calibration does not.
        assert 0.0 < result.measurement.distance < clip.dims.stature
        assert result.measurement.landing_heel_x > (
            result.measurement.takeoff_line_x
        )

    def test_report_carries_the_profile(self, analysis):
        _, result = analysis
        assert result.report.profile == "sit_to_stand"
        text = result.report.render_text()
        assert "Sit to Stand" in text
        assert "T1" in text

    def test_serialization_roundtrip_resolves_profile_rules(self, analysis):
        from repro.serialization import report_from_dict, report_to_dict

        _, result = analysis
        back = report_from_dict(report_to_dict(result.report))
        assert back.profile == "sit_to_stand"
        assert back.score == result.report.score
        assert [r.rule.rule_id for r in back.results] == [
            "T1",
            "T2",
            "T3",
            "T4",
        ]


class TestSitToStandClipValidation:
    def test_rejects_bad_timeline(self):
        with pytest.raises(ConfigurationError):
            SitToStandClipConfig(lean_start=0.6, rise_start=0.5)
        with pytest.raises(ConfigurationError):
            SitToStandClipConfig(num_frames=3)

    def test_clip_shape(self):
        clip = synthesize_sit_to_stand(SitToStandClipConfig(num_frames=12))
        assert len(clip.video) == 12
        assert len(clip.poses) == 12
        assert len(clip.person_masks) == 12
        assert 1 <= clip.rise_frame < 12
