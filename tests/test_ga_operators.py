"""Tests for the grouped crossover and mutation operators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.model.chromosome import GENE_GROUPS
from repro.model.pose import GENES
from repro.ga.operators import OperatorConfig, grouped_crossover, mutate


class TestConfig:
    def test_paper_defaults(self):
        config = OperatorConfig()
        assert config.crossover_rate == 0.2
        assert config.mutation_rate == 0.01

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OperatorConfig(crossover_rate=1.5)
        with pytest.raises(ConfigurationError):
            OperatorConfig(mutation_rate=-0.1)
        with pytest.raises(ConfigurationError):
            OperatorConfig(center_sigma=-1.0)


class TestCrossover:
    def test_rate_zero_copies_parents(self, rng):
        a = np.arange(GENES, dtype=float)
        b = np.arange(GENES, dtype=float) + 100
        child_a, child_b = grouped_crossover(a, b, 0.0, rng)
        assert np.array_equal(child_a, a)
        assert np.array_equal(child_b, b)

    def test_rate_one_swaps_everything(self, rng):
        a = np.arange(GENES, dtype=float)
        b = np.arange(GENES, dtype=float) + 100
        child_a, child_b = grouped_crossover(a, b, 1.0, rng)
        assert np.array_equal(child_a, b)
        assert np.array_equal(child_b, a)

    def test_swaps_whole_groups(self, rng):
        a = np.zeros(GENES)
        b = np.ones(GENES)
        for _ in range(50):
            child_a, _ = grouped_crossover(a, b, 0.5, rng)
            for group in GENE_GROUPS:
                values = {child_a[g] for g in group}
                assert len(values) == 1  # group swapped atomically

    def test_parents_unchanged(self, rng):
        a = np.zeros(GENES)
        b = np.ones(GENES)
        grouped_crossover(a, b, 1.0, rng)
        assert not a.any() and b.all()

    def test_gene_conservation(self, rng):
        a = np.arange(GENES, dtype=float)
        b = np.arange(GENES, dtype=float) + 50
        child_a, child_b = grouped_crossover(a, b, 0.5, rng)
        assert np.allclose(np.sort(np.concatenate([child_a, child_b])),
                           np.sort(np.concatenate([a, b])))


class TestMutation:
    def test_rate_zero_identity(self, rng):
        genes = np.arange(GENES, dtype=float)
        out = mutate(genes, OperatorConfig(mutation_rate=0.0), rng)
        assert np.array_equal(out, genes)

    def test_rate_one_perturbs(self, rng):
        genes = np.full(GENES, 100.0)
        config = OperatorConfig(mutation_rate=1.0, center_sigma=2.0, angle_sigma=5.0)
        out = mutate(genes, config, rng)
        assert not np.array_equal(out, genes)

    def test_angles_wrapped(self, rng):
        genes = np.full(GENES, 359.5)
        config = OperatorConfig(mutation_rate=1.0, angle_sigma=30.0)
        for _ in range(20):
            out = mutate(genes, config, rng)
            assert (out[2:] >= 0).all() and (out[2:] < 360).all()

    def test_input_unchanged(self, rng):
        genes = np.full(GENES, 10.0)
        mutate(genes, OperatorConfig(mutation_rate=1.0), rng)
        assert (genes == 10.0).all()

    def test_mutation_frequency(self, rng):
        genes = np.zeros(GENES)
        config = OperatorConfig(mutation_rate=0.2, angle_sigma=10.0, center_sigma=1.0)
        changed = 0
        trials = 300
        for _ in range(trials):
            out = mutate(genes, config, rng)
            if not np.array_equal(out, genes):
                changed += 1
        # P(at least one of 5 groups mutates) = 1 - 0.8^5 ~ 0.67
        assert 0.5 < changed / trials < 0.85
