"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.imaging.color import hsv_to_rgb, hue_distance, rgb_to_hsv
from repro.imaging.holes import fill_holes
from repro.imaging.metrics import confusion
from repro.imaging.morphology import closing, dilate, erode, opening
from repro.imaging.neighbors import count_neighbors, remove_noise_pixels
from repro.model.geometry import (
    angle_difference,
    direction,
    image_to_world,
    points_to_segments_distance,
    world_to_image,
    wrap_angle,
)
from repro.model.pose import GENES, StickPose, forward_kinematics
from repro.model.sticks import default_body

BODY = default_body(60.0)

masks = arrays(bool, (12, 14), elements=st.booleans())
small_rgb = arrays(
    np.float64,
    (6, 7, 3),
    elements=st.floats(0.0, 1.0, allow_nan=False, width=32),
)
angles = st.floats(-1000.0, 1000.0, allow_nan=False, allow_infinity=False)


class TestColorProperties:
    @given(small_rgb)
    @settings(max_examples=40, deadline=None)
    def test_hsv_roundtrip(self, image):
        assert np.allclose(hsv_to_rgb(rgb_to_hsv(image)), image, atol=1e-8)

    @given(angles, angles)
    @settings(max_examples=100, deadline=None)
    def test_hue_distance_bounds_and_symmetry(self, a, b):
        d = float(hue_distance(np.array(a), np.array(b)))
        assert 0.0 <= d <= 180.0
        assert d == float(hue_distance(np.array(b), np.array(a)))


class TestAngleProperties:
    @given(angles)
    @settings(max_examples=100, deadline=None)
    def test_wrap_idempotent(self, a):
        w = wrap_angle(a)
        assert 0.0 <= w < 360.0
        assert wrap_angle(w) == w

    @given(angles, angles)
    @settings(max_examples=100, deadline=None)
    def test_difference_antisymmetric(self, a, b):
        d1 = angle_difference(a, b)
        d2 = angle_difference(b, a)
        if abs(abs(d1) - 180.0) > 1e-6:  # antisymmetry is ambiguous at 180
            assert d1 == -d2 or abs(d1 + d2) < 1e-6

    @given(angles)
    @settings(max_examples=100, deadline=None)
    def test_direction_unit(self, a):
        assert np.linalg.norm(direction(a)) == 1.0 or abs(
            np.linalg.norm(direction(a)) - 1.0
        ) < 1e-12


class TestMorphologyProperties:
    @given(masks)
    @settings(max_examples=40, deadline=None)
    def test_dilation_extensive(self, mask):
        assert not (mask & ~dilate(mask)).any()

    @given(masks)
    @settings(max_examples=40, deadline=None)
    def test_erosion_anti_extensive(self, mask):
        assert not (erode(mask) & ~mask).any()

    @given(masks)
    @settings(max_examples=40, deadline=None)
    def test_open_close_ordering(self, mask):
        assert not (opening(mask) & ~mask).any()
        assert not (mask & ~closing(mask)).any()

    @given(masks)
    @settings(max_examples=40, deadline=None)
    def test_noise_removal_is_subset(self, mask):
        cleaned = remove_noise_pixels(mask, min_neighbors=3)
        assert not (cleaned & ~mask).any()

    @given(masks)
    @settings(max_examples=40, deadline=None)
    def test_neighbor_counts_bounded(self, mask):
        counts = count_neighbors(mask, connectivity=8)
        assert counts.min() >= 0 and counts.max() <= 8

    @given(masks)
    @settings(max_examples=30, deadline=None)
    def test_fill_holes_superset_idempotent(self, mask):
        filled = fill_holes(mask)
        assert not (mask & ~filled).any()
        assert (fill_holes(filled) == filled).all()


class TestMetricProperties:
    @given(masks, masks)
    @settings(max_examples=40, deadline=None)
    def test_confusion_totals(self, predicted, truth):
        c = confusion(predicted, truth)
        total = c.true_positive + c.false_positive + c.false_negative + c.true_negative
        assert total == predicted.size
        assert 0.0 <= c.iou <= 1.0
        assert c.iou <= c.f1 + 1e-12  # IoU never exceeds F1


chromosomes = arrays(
    np.float64,
    (GENES,),
    elements=st.floats(-100.0, 460.0, allow_nan=False, width=32),
)


class TestKinematicProperties:
    @given(chromosomes)
    @settings(max_examples=60, deadline=None)
    def test_fk_segment_lengths_invariant(self, genes):
        segments = forward_kinematics(genes[None, :], BODY)[0]
        for stick in range(8):
            length = np.linalg.norm(segments[stick, 1] - segments[stick, 0])
            assert abs(length - BODY.lengths[stick]) < 1e-6

    @given(chromosomes, st.floats(-50, 50), st.floats(-50, 50))
    @settings(max_examples=40, deadline=None)
    def test_fk_translation_equivariance(self, genes, dx, dy):
        base = forward_kinematics(genes[None, :], BODY)[0]
        moved_genes = genes.copy()
        moved_genes[0] += dx
        moved_genes[1] += dy
        moved = forward_kinematics(moved_genes[None, :], BODY)[0]
        assert np.allclose(moved, base + np.array([dx, dy]), atol=1e-8)

    @given(chromosomes)
    @settings(max_examples=40, deadline=None)
    def test_gene_roundtrip_preserves_pose(self, genes):
        pose = StickPose.from_genes(genes)
        again = StickPose.from_genes(pose.to_genes())
        assert np.allclose(pose.to_genes(), again.to_genes())


class TestCoordinateProperties:
    @given(
        arrays(np.float64, (5, 2), elements=st.floats(-100, 300, allow_nan=False, width=32)),
        st.integers(10, 500),
    )
    @settings(max_examples=40, deadline=None)
    def test_world_image_inverse(self, points, height):
        assert np.allclose(
            image_to_world(world_to_image(points, height), height), points
        )


class TestDistanceProperties:
    @given(
        arrays(np.float64, (6, 2), elements=st.floats(-50, 50, allow_nan=False, width=32)),
        arrays(np.float64, (3, 2, 2), elements=st.floats(-50, 50, allow_nan=False, width=32)),
    )
    @settings(max_examples=40, deadline=None)
    def test_distance_nonnegative_and_bounded(self, points, segments):
        distances = points_to_segments_distance(points, segments)
        assert (distances >= 0).all()
        # distance to a segment never exceeds distance to its endpoints
        for s in range(3):
            to_start = np.linalg.norm(points - segments[s, 0], axis=1)
            to_end = np.linalg.norm(points - segments[s, 1], axis=1)
            assert (distances[:, s] <= np.minimum(to_start, to_end) + 1e-9).all()
