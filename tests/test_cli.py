"""Tests for the slj command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["synthesize", "--out", "x"],
            ["analyze", "video.npz"],
            ["analyze", "video.npz", "--json", "out.json", "--stature-cm", "120", "--age", "8"],
            ["analyze", "video.npz", "--profile", "--fast"],
            ["demo"],
            ["demo", "--profile"],
            ["serve", "--port", "9000"],
            ["evaluate", "--seeds", "0", "1", "--flaws", "--fast"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_profile_flag_defaults_off(self):
        args = build_parser().parse_args(["analyze", "video.npz"])
        assert args.profile is False and args.fast is False

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_standard_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["synthesize", "--out", str(tmp_path), "--violate", "E9"])


class TestSynthesize:
    def test_writes_video_and_truth(self, tmp_path, capsys):
        out = tmp_path / "jump"
        code = main(["synthesize", "--out", str(out), "--seed", "3"])
        assert code == 0
        assert (out / "video.npz").exists()
        assert (out / "ground_truth.npz").exists()
        with np.load(out / "ground_truth.npz") as archive:
            assert archive["poses"].shape == (20, 10)
            assert archive["person_masks"].shape[0] == 20
        assert "wrote 20-frame jump" in capsys.readouterr().out

    def test_frames_flag_writes_pngs(self, tmp_path):
        out = tmp_path / "jump"
        main(["synthesize", "--out", str(out), "--frames"])
        assert (out / "frame_000.png").exists()
        assert (out / "frame_019.png").exists()

    def test_violation_recorded(self, tmp_path, capsys):
        out = tmp_path / "jump"
        main(["synthesize", "--out", str(out), "--violate", "E1", "E5"])
        assert "E1, E5" in capsys.readouterr().out


class TestAnalyzeProfile:
    def test_profile_prints_stage_timing_table(self, tmp_path, capsys):
        out = tmp_path / "jump"
        main(["synthesize", "--out", str(out), "--seed", "0"])
        capsys.readouterr()

        code = main(
            ["analyze", str(out / "video.npz"), "--fast", "--profile"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "stage timings:" in printed
        # the per-stage table names every top-level pipeline stage
        for stage in ("segmentation", "tracking", "scoring"):
            assert stage in printed
        # sub-stages and counters ride along
        assert "segmentation/subtract" in printed
        assert "ga.evaluations" in printed
