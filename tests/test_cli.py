"""Tests for the slj command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import _parse_standards, build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["synthesize", "--out", "x"],
            ["analyze", "video.npz"],
            ["analyze", "video.npz", "--json", "out.json", "--stature-cm", "120", "--age", "8"],
            ["analyze", "video.npz", "--profile", "--fast"],
            ["demo"],
            ["demo", "--profile"],
            ["serve", "--port", "9000"],
            ["evaluate", "--seeds", "0", "1", "--flaws", "--fast"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_profile_flag_defaults_off(self):
        args = build_parser().parse_args(["analyze", "video.npz"])
        assert args.profile is False and args.fast is False

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_standard_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["synthesize", "--out", str(tmp_path), "--violate", "E9"])

    def test_unknown_standard_message_without_chained_traceback(self):
        with pytest.raises(SystemExit) as excinfo:
            _parse_standards(["E9"])
        message = str(excinfo.value)
        assert "unknown standard 'E9'" in message
        assert "E1" in message  # lists the valid choices
        # raised `from None`: the KeyError must not chain into the exit
        assert excinfo.value.__cause__ is None
        assert excinfo.value.__suppress_context__

    def test_config_flags_accepted(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "analyze",
                "video.npz",
                "--preset",
                "fast",
                "--set",
                "tracker.ga.max_generations=5",
                "--set",
                "smoothing_mode=none",
            ]
        )
        assert args.preset == "fast"
        assert args.overrides == [
            "tracker.ga.max_generations=5",
            "smoothing_mode=none",
        ]
        for argv in (
            ["demo", "--fast", "--json", "out.json"],
            ["evaluate", "--preset", "accurate"],
            ["analyze", "video.npz", "--config", "cfg.toml"],
        ):
            assert callable(parser.parse_args(argv).func)

    def test_fast_conflicts_with_other_preset(self, tmp_path):
        with pytest.raises(SystemExit, match="conflicts"):
            main(
                ["analyze", str(tmp_path / "v.npz"), "--fast", "--preset", "paper"]
            )

    def test_bad_override_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="bad configuration"):
            main(
                [
                    "analyze",
                    str(tmp_path / "v.npz"),
                    "--set",
                    "tracker.no_such_knob=1",
                ]
            )

    def test_unknown_preset_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="bad configuration"):
            main(["analyze", str(tmp_path / "v.npz"), "--preset", "warp"])


class TestSynthesize:
    def test_writes_video_and_truth(self, tmp_path, capsys):
        out = tmp_path / "jump"
        code = main(["synthesize", "--out", str(out), "--seed", "3"])
        assert code == 0
        assert (out / "video.npz").exists()
        assert (out / "ground_truth.npz").exists()
        with np.load(out / "ground_truth.npz") as archive:
            assert archive["poses"].shape == (20, 10)
            assert archive["person_masks"].shape[0] == 20
        assert "wrote 20-frame jump" in capsys.readouterr().out

    def test_frames_flag_writes_pngs(self, tmp_path):
        out = tmp_path / "jump"
        main(["synthesize", "--out", str(out), "--frames"])
        assert (out / "frame_000.png").exists()
        assert (out / "frame_019.png").exists()

    def test_violation_recorded(self, tmp_path, capsys):
        out = tmp_path / "jump"
        main(["synthesize", "--out", str(out), "--violate", "E1", "E5"])
        assert "E1, E5" in capsys.readouterr().out


class TestConfigProvenance:
    """The acceptance flow: a report reproduces itself from its JSON."""

    def test_analyze_embeds_config_and_reproduces(self, tmp_path, capsys):
        out = tmp_path / "jump"
        main(["synthesize", "--out", str(out), "--seed", "0"])

        first = tmp_path / "out.json"
        code = main(
            [
                "analyze",
                str(out / "video.npz"),
                "--preset",
                "fast",
                "--set",
                "tracker.ga.max_generations=5",
                "--json",
                str(first),
            ]
        )
        assert code == 0
        payload = json.loads(first.read_text())
        assert payload["config"]["tracker"]["ga"]["max_generations"] == 5
        assert payload["config"]["tracker"]["ga"]["population_size"] == 30
        assert payload["config_hash"]
        assert payload["trace"]["metadata"]["config_hash"] == payload["config_hash"]

        # re-running with a config file reconstructed from that JSON
        # reproduces the identical report
        second = tmp_path / "out2.json"
        code = main(
            [
                "analyze",
                str(out / "video.npz"),
                "--config",
                str(first),
                "--json",
                str(second),
            ]
        )
        assert code == 0
        repeat = json.loads(second.read_text())
        assert repeat["config"] == payload["config"]
        assert repeat["config_hash"] == payload["config_hash"]
        assert repeat["report"] == payload["report"]
        assert repeat["poses"] == payload["poses"]
        capsys.readouterr()

    def test_demo_fast_json_carries_hash(self, tmp_path, capsys):
        path = tmp_path / "demo.json"
        code = main(["demo", "--fast", "--json", str(path)])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["config_hash"]
        assert payload["config"]["tracker"]["ga"]["max_generations"] == 10
        assert f"config {payload['config_hash']}" in capsys.readouterr().out

    def test_demo_multi_actor_scores_two_tracks(self, tmp_path, capsys):
        path = tmp_path / "demo2.json"
        code = main(["demo", "--fast", "--actors", "2", "--json", str(path)])
        assert code == 0
        payload = json.loads(path.read_text())
        assert [t["track_id"] for t in payload["tracks"]] == ["t0", "t1"]
        assert all(
            t["report"]["score"] is not None for t in payload["tracks"]
        )
        out = capsys.readouterr().out
        assert "track t0" in out and "track t1" in out
        assert "0 id switches" in out


class TestAnalyzeProfile:
    def test_profile_prints_stage_timing_table(self, tmp_path, capsys):
        out = tmp_path / "jump"
        main(["synthesize", "--out", str(out), "--seed", "0"])
        capsys.readouterr()

        code = main(
            ["analyze", str(out / "video.npz"), "--fast", "--profile"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "stage timings:" in printed
        # the per-stage table names every top-level pipeline stage
        for stage in ("segmentation", "tracking", "scoring"):
            assert stage in printed
        # sub-stages and counters ride along
        assert "segmentation/subtract" in printed
        assert "ga.evaluations" in printed


class TestJobsCommand:
    def test_jobs_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["jobs", "submit", "video.npz", "--wait", "--fast"],
            ["jobs", "status", "j00001-abc"],
            ["jobs", "result", "j00001-abc", "--json", "out.json"],
            ["jobs", "cancel", "j00001-abc"],
            ["jobs", "list", "--limit", "5", "--state", "succeeded"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_jobs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["jobs"])

    def test_submit_wait_status_list_against_live_service(
        self, tmp_path, capsys
    ):
        from repro.pipeline import AnalyzerConfig
        from repro.service import ServiceHandle
        from repro.video.sequence import VideoSequence

        class InstantAnalyzer:
            STAGES = ("segmentation", "tracking", "scoring")
            config = AnalyzerConfig()

            def analyze(self, video, annotation=None, rng=None,
                        instrumentation=None, cancel_token=None):
                return object()

        video_path = tmp_path / "video.npz"
        VideoSequence(np.zeros((2, 8, 8, 3), dtype=np.uint8)).save(video_path)

        handle = ServiceHandle()
        handle._server.analyzer = InstantAnalyzer()
        handle.jobs.workers._serializer = lambda analysis: {
            "report": {"score": 0.5},
            "config_hash": "deadbeef",
            "degraded": False,
        }
        handle.start()
        try:
            out_json = tmp_path / "analysis.json"
            code = main(
                [
                    "jobs",
                    "--url",
                    handle.address,
                    "submit",
                    str(video_path),
                    "--wait",
                    "--json",
                    str(out_json),
                ]
            )
            assert code == 0
            printed = capsys.readouterr().out
            assert "submitted job j00001-" in printed
            assert "succeeded" in printed
            assert json.loads(out_json.read_text())["report"]["score"] == 0.5

            job_id = printed.split("submitted job ")[1].split(" ")[0]
            assert main(["jobs", "--url", handle.address, "status", job_id]) == 0
            assert "succeeded" in capsys.readouterr().out
            assert main(["jobs", "--url", handle.address, "list"]) == 0
            assert job_id in capsys.readouterr().out
        finally:
            handle.stop()
