"""Association edge cases: births, departures, crossings (mask level).

The jump motion model only moves actors rightward down their own lane,
so occlusion scenarios are exercised here with synthetic silhouette
sequences fed straight into :class:`TrackManager` — the same code path
the pipeline drives, minus rendering.
"""

import numpy as np

from repro.ga.engine import GAConfig
from repro.ga.temporal import TrackerConfig
from repro.model.fitness import FitnessConfig
from repro.tracking import TrackManager, TrackingConfig
from repro.video.synthesis import MultiActorJumpConfig, crossing_actor_parameters

SHAPE = (60, 100)


def blob(row, col, height=14, width=10):
    mask = np.zeros(SHAPE, dtype=bool)
    mask[row : row + height, col : col + width] = True
    return mask


def manager(**tracking_overrides):
    return TrackManager(
        TrackerConfig(
            ga=GAConfig(population_size=16, max_generations=3, patience=2),
            fitness=FitnessConfig(max_points=200),
        ),
        TrackingConfig(enabled=True, **tracking_overrides),
        rng=np.random.default_rng(0),
    )


class TestBirthsMidStream:
    def test_second_actor_entering_spawns_new_track(self):
        m = manager(max_tracks=2)
        for frame in range(10):
            mask = blob(5, 10 + 2 * frame)
            if frame >= 4:  # second actor walks in at frame 4
                mask |= blob(40, 10 + 2 * (frame - 4))
            m.step(mask)
        assert [t.track_id for t in m.tracks] == ["t0", "t1"]
        assert m.tracks[1].start_frame == 4
        assert all(t.confirmed for t in m.tracks)
        # The newcomer never disturbed the first actor's track.
        assert m.tracks[0].frames == 10
        assert m.tracks[1].frames == 6

    def test_late_birth_does_not_steal_primary(self):
        m = manager(max_tracks=2)
        for frame in range(8):
            mask = blob(5, 10 + 2 * frame)
            if frame >= 5:
                mask |= blob(40, 10)
            m.step(mask)
        assert m.primary_track().track_id == "t0"


class TestActorLeavingFrame:
    def test_departed_track_retires_and_trims(self):
        m = manager(max_tracks=2, max_misses=2)
        for frame in range(10):
            mask = blob(5, 10 + 2 * frame) if frame < 6 else np.zeros(
                SHAPE, dtype=bool
            )
            m.step(mask)
        (track,) = m.tracks
        assert track.state == "retired"
        # 6 observed frames + 2 carried misses were consumed...
        assert track.frames == 8
        # ...but the result ends at the last real observation.
        assert len(track.result().poses) == 6

    def test_departure_frees_a_slot_for_a_newcomer(self):
        m = manager(max_tracks=1, max_misses=1)
        for frame in range(4):
            m.step(blob(5, 10 + 2 * frame))
        m.step(np.zeros(SHAPE, dtype=bool))  # actor gone -> t0 retires
        assert m.tracks[0].state == "retired"
        for frame in range(3):
            m.step(blob(40, 10 + 2 * frame))  # a new actor enters
        assert [t.track_id for t in m.tracks] == ["t0", "t1"]
        assert m.tracks[1].confirmed


class TestCrossingActors:
    def run_crossing(self, method):
        # Two equal-height actors walk toward each other through the
        # same rows: their silhouettes merge into one component in the
        # middle frames, then split again.
        m = manager(max_tracks=2, method=method)
        for frame in range(14):
            a = blob(20, 6 + 5 * frame)
            b = blob(20, 76 - 5 * frame)
            m.step(a | b)
        return m

    def test_merge_and_split_id_switch_bound(self):
        # During the merge one track matches the fused component and
        # the other misses until it retires; the split then spawns a
        # replacement.  Documented bound: one crossing costs at most
        # ONE identity (<= 3 track ids for 2 actors) — the tracker
        # degrades by forking an id, never by collapsing both actors
        # into one track.
        for method in ("greedy", "hungarian"):
            m = self.run_crossing(method)
            assert len(m.tracks) <= 3, method
            alive = m.alive_tracks()
            assert len(alive) == 2, method
            assert all(t.confirmed for t in alive), method

    def test_crossing_parameters_overlap(self):
        # The synthesis-level crossing layout really does overlap: the
        # second actor stands inside the first actor's flight path.
        config = MultiActorJumpConfig(seed=0, actors=2)
        first, second = crossing_actor_parameters(config)
        assert second.stand_x == first.stand_x + config.jump_distance
        assert first.stand_x + first.jump_distance >= second.stand_x
        assert second.takeoff_fraction > first.takeoff_fraction


class TestNonCrossingScene:
    def test_zero_extra_identities(self):
        # Parallel lanes, no interaction: exactly one id per actor, no
        # retirement, no respawn — the zero-ID-switch baseline the
        # MOT acceptance test also pins end to end.
        m = manager(max_tracks=2)
        for frame in range(12):
            m.step(blob(5, 10 + 3 * frame) | blob(40, 10 + 3 * frame))
        assert [t.track_id for t in m.tracks] == ["t0", "t1"]
        assert all(t.confirmed and t.alive for t in m.tracks)
        assert all(t.frames == 12 for t in m.tracks)
