"""Tests for the standing-long-jump motion generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.model.sticks import FOOT, SHANK, THIGH, TRUNK, UPPER_ARM, default_body
from repro.video.synthesis.motion import (
    PHASE_FLIGHT,
    PHASE_INITIATION,
    PHASE_LANDING,
    JumpMotion,
    JumpParameters,
    JumpStyle,
    generate_jump_motion,
    good_style,
)

BODY = default_body(72.0)


@pytest.fixture(scope="module")
def motion() -> JumpMotion:
    return generate_jump_motion(BODY)


class TestParameters:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            JumpParameters(num_frames=2)
        with pytest.raises(ConfigurationError):
            JumpParameters(takeoff_fraction=0.9, landing_fraction=0.5)
        with pytest.raises(ConfigurationError):
            JumpParameters(jump_distance=-1.0)

    def test_takeoff_frame(self):
        params = JumpParameters(num_frames=20, takeoff_fraction=0.5)
        assert params.takeoff_frame == 10


class TestStyle:
    def test_keyframe_replacement(self):
        style = good_style().adjusted("crouch", THIGH, 171.0)
        assert style.crouch[THIGH] == 171.0
        with pytest.raises(ConfigurationError):
            good_style().with_keyframe("warmup", (0.0,) * 8)

    def test_angle_count_validated(self):
        with pytest.raises(ConfigurationError):
            JumpStyle(stand=(0.0,) * 7)


class TestMotion:
    def test_frame_count_and_phases(self, motion):
        assert len(motion) == 20
        assert motion.phases[0] == PHASE_INITIATION
        assert PHASE_FLIGHT in motion.phases
        assert motion.phases[-1] == PHASE_LANDING
        # phases are contiguous: initiation, then flight, then landing
        joined = "".join(p[0] for p in motion.phases)
        assert "fi" not in joined and "lf" not in joined and "li" not in joined

    def test_takeoff_frame_matches_phase(self, motion):
        takeoff = motion.takeoff_frame
        assert motion.phases[takeoff - 1] == PHASE_INITIATION
        assert motion.phases[takeoff] == PHASE_FLIGHT

    def test_horizontal_progress(self, motion):
        xs = motion.center_track()[:, 0]
        assert xs[-1] - xs[0] == pytest.approx(
            motion.params.jump_distance + motion.params.settle_advance, abs=1.5
        )
        assert (np.diff(xs) >= -1e-6).all()  # never moves backwards

    def test_feet_on_ground_during_ground_phases(self, motion):
        from repro.analysis.events import foot_clearance

        clearance = foot_clearance(motion.poses, BODY)
        ground = motion.params.ground_level
        for index, phase in enumerate(motion.phases):
            if phase != PHASE_FLIGHT:
                assert clearance[index] == pytest.approx(
                    ground + BODY.thicknesses[FOOT] / 2.0, abs=0.8
                )

    def test_airborne_during_flight(self, motion):
        from repro.analysis.events import foot_clearance

        clearance = foot_clearance(motion.poses, BODY)
        flight = [i for i, p in enumerate(motion.phases) if p == PHASE_FLIGHT]
        interior = flight[1:-1]
        ground = motion.params.ground_level
        assert all(clearance[i] > ground + 1.0 for i in interior)

    def test_crouch_happens(self, motion):
        # knee flexion peaks in the initiation phase
        flexion = motion.angle_track(SHANK) - motion.angle_track(THIGH)
        init_frames = motion.takeoff_frame
        assert flexion[:init_frames].max() > 60.0

    def test_arm_swings_behind_then_forward(self, motion):
        arm = motion.angle_track(UPPER_ARM)
        assert arm[: motion.takeoff_frame].max() > 270.0
        assert arm[motion.takeoff_frame :].min() < 160.0

    def test_arm_never_passes_over_head(self, motion):
        # the swing must go down past the legs, never up over the head:
        # per-frame angular steps stay moderate and pass through ~180
        arm = motion.angle_track(UPPER_ARM)
        descending = arm[(arm > 150) & (arm < 230)]
        assert descending.size > 0

    def test_trunk_leans_forward_in_flight(self, motion):
        trunk = motion.angle_track(TRUNK)
        flight = [i for i, p in enumerate(motion.phases) if p == PHASE_FLIGHT]
        assert max(trunk[i] for i in flight) > 45.0

    def test_deterministic(self):
        a = generate_jump_motion(BODY)
        b = generate_jump_motion(BODY)
        assert all(pa == pb for pa, pb in zip(a.poses, b.poses))

    def test_custom_frame_count(self):
        motion = generate_jump_motion(BODY, JumpParameters(num_frames=30))
        assert len(motion) == 30

    def test_sway_only_in_initiation(self):
        still = generate_jump_motion(
            BODY, JumpParameters(sway_amplitude=0.0)
        )
        swayed = generate_jump_motion(
            BODY, JumpParameters(sway_amplitude=4.0)
        )
        takeoff = still.params.takeoff_frame
        arm_still = still.angle_track(UPPER_ARM)
        arm_swayed = swayed.angle_track(UPPER_ARM)
        assert not np.allclose(arm_still[:takeoff], arm_swayed[:takeoff])
        assert np.allclose(arm_still[takeoff:], arm_swayed[takeoff:])
