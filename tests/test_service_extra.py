"""Additional service tests: concurrency, payload limits, standards detail."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.ga.engine import GAConfig
from repro.ga.temporal import TrackerConfig
from repro.model.fitness import FitnessConfig
from repro.pipeline import AnalyzerConfig
from repro.service import ServiceHandle, encode_video, request_analysis
from repro.video.sequence import VideoSequence


@pytest.fixture(scope="module")
def tiny_jump():
    from repro.video.synthesis import (
        JumpParameters,
        SyntheticJumpConfig,
        synthesize_jump,
    )

    return synthesize_jump(
        SyntheticJumpConfig(seed=5, params=JumpParameters(num_frames=8))
    )


@pytest.fixture(scope="module")
def service():
    config = AnalyzerConfig(
        tracker=TrackerConfig(
            ga=GAConfig(population_size=20, max_generations=6, patience=3),
            fitness=FitnessConfig(max_points=300),
            containment_margin=1,
            min_inside_fraction=0.95,
            containment_samples=7,
        )
    )
    handle = ServiceHandle(config=config).start()
    yield handle
    handle.stop()


class TestConcurrency:
    def test_parallel_health_checks(self, service):
        results = []

        def probe():
            with urllib.request.urlopen(f"{service.address}/health", timeout=10) as r:
                results.append(json.loads(r.read())["status"])

        threads = [threading.Thread(target=probe) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == ["ok"] * 8

    def test_two_analyses_in_parallel(self, service, tiny_jump):
        outcomes = {}

        def run(name, seed):
            outcomes[name] = request_analysis(
                service.address, tiny_jump.video, seed=seed
            )

        a = threading.Thread(target=run, args=("a", 1))
        b = threading.Thread(target=run, args=("b", 2))
        a.start(); b.start(); a.join(); b.join()
        assert set(outcomes) == {"a", "b"}
        for result in outcomes.values():
            assert len(result["poses"]) == 8


class TestStandardsDetail:
    def test_rules_consistent_with_library(self, service):
        from repro.scoring.rules import RULES

        with urllib.request.urlopen(f"{service.address}/standards", timeout=10) as r:
            payload = json.loads(r.read())
        served = {rule["rule"]: rule for rule in payload["rules"]}
        for rule in RULES:
            assert served[rule.rule_id]["threshold_deg"] == rule.threshold
            assert served[rule.rule_id]["standard"] == rule.standard.name

    def test_advice_text_served(self, service):
        with urllib.request.urlopen(f"{service.address}/standards", timeout=10) as r:
            payload = json.loads(r.read())
        assert all(len(item["advice"]) > 20 for item in payload["standards"])


class TestPayloadEdges:
    def test_single_frame_video_rejected_cleanly(self, service, tiny_jump):
        # a one-frame video cannot be change-detected; server maps the
        # library error to HTTP 422 rather than crashing
        one = VideoSequence(tiny_jump.video.frames[:1])
        payload = json.dumps(
            {"video_npz_b64": encode_video(one), "seed": 0}
        ).encode()
        request = urllib.request.Request(
            f"{service.address}/analyze",
            data=payload,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=60)
        assert excinfo.value.code == 422

    def test_empty_body(self, service):
        request = urllib.request.Request(
            f"{service.address}/analyze", data=b"", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


def _post_json(url: str, body: dict, timeout: float = 300.0) -> tuple[int, dict]:
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


class TestBatchEndpoint:
    def test_batch_analyzes_every_video(self, service, tiny_jump):
        encoded = encode_video(tiny_jump.video)
        status, payload = _post_json(
            f"{service.address}/analyze/batch",
            {"videos": [{"video_npz_b64": encoded}, {"video_npz_b64": encoded}]},
        )
        assert status == 200
        assert payload["count"] == 2
        assert payload["failed"] == 0
        for index, result in enumerate(payload["results"]):
            assert result["index"] == index
            assert result["ok"] is True
            assert result["analysis"]["report"]["score"] >= 0

    def test_batch_isolates_per_item_failures(self, service, tiny_jump):
        good = {"video_npz_b64": encode_video(tiny_jump.video)}
        bad = {
            "video_npz_b64": encode_video(
                VideoSequence(tiny_jump.video.frames[:1])
            )
        }
        status, payload = _post_json(
            f"{service.address}/analyze/batch", {"videos": [bad, good]}
        )
        assert status == 200
        assert payload["failed"] == 1
        assert payload["results"][0]["ok"] is False
        assert payload["results"][0]["error"]
        assert payload["results"][1]["ok"] is True

    def test_batch_rejects_empty_and_oversized(self, service):
        for body in ({"videos": []}, {"videos": "nope"}):
            request = urllib.request.Request(
                f"{service.address}/analyze/batch",
                data=json.dumps(body).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400

    def test_batch_item_errors_name_the_index(self, service):
        request = urllib.request.Request(
            f"{service.address}/analyze/batch",
            data=json.dumps({"videos": [{"seed": 1}]}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        detail = json.loads(excinfo.value.read())
        assert "videos[0]" in detail["error"]["message"]


class TestAnalyzerCacheMetrics:
    def test_per_request_config_populates_cache(self, service, tiny_jump):
        overrides = {"tracker": {"ga": {"max_generations": 5}}}
        for _ in range(2):
            request_analysis(
                f"{service.address}",
                tiny_jump.video,
                seed=0,
                config=overrides,
            )
        with urllib.request.urlopen(
            f"{service.address}/metrics", timeout=10
        ) as response:
            snapshot = json.loads(response.read())
        cache = snapshot["analyzer_cache"]
        assert cache["misses"] >= 1
        assert cache["hits"] >= 1
        assert cache["size"] >= 1
        assert snapshot["pool"]["completed"] >= 2
        assert snapshot["pool"]["workers"] >= 1
