"""Tests for the Table 2 rules."""

import pytest

from repro.errors import ScoringError
from repro.model.pose import StickPose
from repro.model.sticks import FOREARM, NECK, SHANK, THIGH, TRUNK, UPPER_ARM
from repro.scoring.phases import StageWindows
from repro.scoring.rules import RULES, evaluate_rules, rule_for_standard
from repro.scoring.standards import Standard


def _sequence(initiation_pose, air_pose, n=20):
    """10 frames of one pose then 10 of another."""
    return [initiation_pose] * (n // 2) + [air_pose] * (n - n // 2)


def _neutral():
    return StickPose.standing(0.0, 0.0)


class TestRuleTable:
    def test_seven_rules(self):
        assert len(RULES) == 7
        assert [rule.rule_id for rule in RULES] == [f"R{i}" for i in range(1, 8)]

    def test_rule_for_standard(self):
        assert rule_for_standard(Standard.E3).rule_id == "R3"
        assert rule_for_standard(Standard.E7).rule_id == "R7"

    def test_thresholds_match_paper(self):
        thresholds = {rule.rule_id: rule.threshold for rule in RULES}
        assert thresholds == {
            "R1": 60.0, "R2": 30.0, "R3": 270.0, "R4": 45.0,
            "R5": 60.0, "R6": 45.0, "R7": 160.0,
        }


class TestIndividualRules:
    def test_r1_knee_flexion(self):
        crouch = _neutral().with_angle(THIGH, 140.0).with_angle(SHANK, 228.0)
        results = evaluate_rules(_sequence(crouch, _neutral()))
        r1 = results[0]
        assert r1.passed and r1.value == pytest.approx(88.0)

    def test_r1_fails_straight_legs(self):
        straight = _neutral().with_angle(THIGH, 180.0).with_angle(SHANK, 180.0)
        results = evaluate_rules(_sequence(straight, _neutral()))
        assert not results[0].passed

    def test_r2_neck(self):
        bent = _neutral().with_angle(NECK, 40.0)
        assert evaluate_rules(_sequence(bent, _neutral()))[1].passed

    def test_r2_wraparound_safe(self):
        # neck at 359 degrees is one degree *backward*, not 359 forward
        wobble = _neutral().with_angle(NECK, 359.0)
        result = evaluate_rules(_sequence(wobble, _neutral()))[1]
        assert not result.passed
        assert result.value == pytest.approx(-1.0)

    def test_r3_arms_back(self):
        swung = _neutral().with_angle(UPPER_ARM, 295.0)
        assert evaluate_rules(_sequence(swung, _neutral()))[2].passed
        not_swung = _neutral().with_angle(UPPER_ARM, 230.0)
        assert not evaluate_rules(_sequence(not_swung, _neutral()))[2].passed

    def test_r4_elbow(self):
        bent = _neutral().with_angle(UPPER_ARM, 295.0).with_angle(FOREARM, 230.0)
        assert evaluate_rules(_sequence(bent, _neutral()))[3].passed

    def test_r5_air_knees(self):
        tucked = _neutral().with_angle(THIGH, 115.0).with_angle(SHANK, 205.0)
        results = evaluate_rules(_sequence(_neutral(), tucked))
        assert results[4].passed

    def test_r6_trunk(self):
        leaning = _neutral().with_angle(TRUNK, 55.0)
        assert evaluate_rules(_sequence(_neutral(), leaning))[5].passed
        upright = _neutral().with_angle(TRUNK, 20.0)
        assert not evaluate_rules(_sequence(_neutral(), upright))[5].passed

    def test_r7_arms_forward_uses_min(self):
        # arm forward in only one frame of the window still passes
        forward = _neutral().with_angle(UPPER_ARM, 100.0)
        back = _neutral().with_angle(UPPER_ARM, 200.0)
        poses = [_neutral()] * 10 + [back] * 9 + [forward]
        results = evaluate_rules(poses)
        assert results[6].passed
        assert results[6].decisive_frame == 19


class TestWindows:
    def test_initiation_rule_ignores_air_frames(self):
        # crouch happens in the air window only -> R1 must fail
        crouch = _neutral().with_angle(THIGH, 140.0).with_angle(SHANK, 228.0)
        poses = _sequence(_neutral(), crouch)
        assert not evaluate_rules(poses)[0].passed

    def test_custom_windows(self):
        crouch = _neutral().with_angle(THIGH, 140.0).with_angle(SHANK, 228.0)
        poses = [_neutral()] * 4 + [crouch] + [_neutral()] * 15
        windows = StageWindows(initiation=(0, 6), air_landing=(6, 20))
        assert evaluate_rules(poses, windows)[0].passed

    def test_too_few_poses_rejected(self):
        with pytest.raises(ScoringError):
            evaluate_rules([_neutral()] * 5, StageWindows.paper_default())

    def test_decisive_frame_in_window(self):
        crouch = _neutral().with_angle(THIGH, 140.0).with_angle(SHANK, 228.0)
        poses = _sequence(crouch, _neutral())
        result = evaluate_rules(poses)[0]
        assert 0 <= result.decisive_frame < 10

    def test_margin_sign(self):
        crouch = _neutral().with_angle(THIGH, 140.0).with_angle(SHANK, 228.0)
        results = evaluate_rules(_sequence(crouch, _neutral()))
        assert results[0].margin == pytest.approx(28.0)
        assert results[1].margin < 0  # neck never bent -> negative margin
