"""Property-based tests on domain-level invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.events import foot_clearance
from repro.model.pose import StickPose
from repro.model.sticks import FOOT, default_body
from repro.scoring.phases import StageWindows
from repro.serialization import (
    annotation_from_dict,
    annotation_to_dict,
    pose_from_dict,
    pose_to_dict,
)
from repro.model.annotation import FirstFrameAnnotation
from repro.video.synthesis.motion import JumpParameters, generate_jump_motion

BODY = default_body(72.0)

coords = st.floats(-200.0, 400.0, allow_nan=False)
angles = st.floats(0.0, 359.99, allow_nan=False)


class TestSerializationProperties:
    @given(coords, coords, st.lists(angles, min_size=8, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_pose_roundtrip(self, x0, y0, angle_list):
        pose = StickPose(x0=x0, y0=y0, angles_deg=tuple(angle_list))
        back = pose_from_dict(pose_to_dict(pose))
        assert back.x0 == pose.x0 and back.y0 == pose.y0
        assert np.allclose(back.angles_deg, pose.angles_deg)

    @given(st.floats(20.0, 150.0, allow_nan=False, width=32))
    @settings(max_examples=30, deadline=None)
    def test_annotation_roundtrip(self, stature):
        annotation = FirstFrameAnnotation(
            pose=StickPose.standing(10.0, 20.0), dims=default_body(stature)
        )
        back = annotation_from_dict(annotation_to_dict(annotation))
        assert np.allclose(back.dims.lengths, annotation.dims.lengths)


class TestMotionProperties:
    @given(
        st.integers(8, 40),
        st.floats(0.35, 0.6, allow_nan=False),
        st.floats(30.0, 80.0, allow_nan=False),
        st.floats(4.0, 16.0, allow_nan=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_motion_invariants(self, num_frames, takeoff, distance, height):
        params = JumpParameters(
            num_frames=num_frames,
            takeoff_fraction=takeoff,
            landing_fraction=min(takeoff + 0.4, 0.95),
            jump_distance=distance,
            flight_height=height,
        )
        motion = generate_jump_motion(BODY, params)

        # 1. frame count
        assert len(motion) == num_frames
        # 2. phases partition the sequence in order
        order = {"initiation": 0, "flight": 1, "landing": 2}
        codes = [order[p] for p in motion.phases]
        assert codes == sorted(codes)
        assert codes[0] == 0 and codes[-1] == 2
        # 3. monotone forward motion
        xs = motion.center_track()[:, 0]
        assert (np.diff(xs) >= -1e-6).all()
        # 4. grounded feet during ground phases
        clearance = foot_clearance(motion.poses, BODY)
        expected = params.ground_level + BODY.thicknesses[FOOT] / 2.0
        for index, phase in enumerate(motion.phases):
            if phase != "flight":
                assert abs(clearance[index] - expected) < 1.0
        # 5. all angles wrapped
        for pose in motion.poses:
            assert all(0.0 <= a < 360.0 for a in pose.angles_deg)


class TestWindowProperties:
    @given(st.integers(4, 100), st.integers(0, 120))
    @settings(max_examples=60, deadline=None)
    def test_windows_always_valid(self, num_frames, takeoff):
        windows = StageWindows.for_sequence(num_frames, takeoff_frame=takeoff)
        i0, i1 = windows.initiation
        a0, a1 = windows.air_landing
        assert 0 <= i0 < i1 <= a0 < a1 == num_frames
