"""Tests for RGB↔HSV conversion and hue distance (Eq. 2)."""

import numpy as np
import pytest

from repro.imaging.color import hsv_to_rgb, hue_distance, rgb_to_hsv


def _pixel(r, g, b):
    return np.array([[[r, g, b]]], dtype=np.float64)


class TestRgbToHsv:
    @pytest.mark.parametrize(
        "rgb, expected_hsv",
        [
            ((1.0, 0.0, 0.0), (0.0, 1.0, 1.0)),  # red
            ((0.0, 1.0, 0.0), (120.0, 1.0, 1.0)),  # green
            ((0.0, 0.0, 1.0), (240.0, 1.0, 1.0)),  # blue
            ((1.0, 1.0, 0.0), (60.0, 1.0, 1.0)),  # yellow
            ((0.0, 1.0, 1.0), (180.0, 1.0, 1.0)),  # cyan
            ((1.0, 0.0, 1.0), (300.0, 1.0, 1.0)),  # magenta
            ((0.5, 0.5, 0.5), (0.0, 0.0, 0.5)),  # gray
            ((0.0, 0.0, 0.0), (0.0, 0.0, 0.0)),  # black
        ],
    )
    def test_primary_colors(self, rgb, expected_hsv):
        hsv = rgb_to_hsv(_pixel(*rgb))[0, 0]
        assert np.allclose(hsv, expected_hsv, atol=1e-9)

    def test_hue_in_range(self, rng):
        image = rng.random((16, 16, 3))
        hsv = rgb_to_hsv(image)
        assert hsv[..., 0].min() >= 0.0
        assert hsv[..., 0].max() < 360.0
        assert hsv[..., 1].min() >= 0.0 and hsv[..., 1].max() <= 1.0
        assert hsv[..., 2].min() >= 0.0 and hsv[..., 2].max() <= 1.0

    def test_value_is_max_channel(self, rng):
        image = rng.random((8, 8, 3))
        hsv = rgb_to_hsv(image)
        assert np.allclose(hsv[..., 2], image.max(axis=-1))


class TestRoundTrip:
    def test_random_images_roundtrip(self, rng):
        image = rng.random((20, 20, 3))
        back = hsv_to_rgb(rgb_to_hsv(image))
        assert np.allclose(back, image, atol=1e-9)

    def test_uint8_input(self):
        image = np.array([[[200, 50, 25]]], dtype=np.uint8)
        hsv = rgb_to_hsv(image)
        assert hsv[0, 0, 2] == pytest.approx(200 / 255)


class TestHueDistance:
    def test_zero_for_equal(self):
        assert hue_distance(123.0, 123.0) == 0.0

    def test_wraps_shortest_way(self):
        # 350 and 10 are 20 degrees apart, not 340.
        assert hue_distance(np.array(350.0), np.array(10.0)) == pytest.approx(20.0)

    def test_max_is_180(self):
        assert hue_distance(np.array(0.0), np.array(180.0)) == pytest.approx(180.0)

    def test_symmetry(self, rng):
        a = rng.uniform(0, 360, 50)
        b = rng.uniform(0, 360, 50)
        assert np.allclose(hue_distance(a, b), hue_distance(b, a))

    def test_range(self, rng):
        a = rng.uniform(-720, 720, 100)
        b = rng.uniform(-720, 720, 100)
        d = hue_distance(a, b)
        assert (d >= 0).all() and (d <= 180).all()
