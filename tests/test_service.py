"""Tests for the jump-analysis web service (real HTTP on localhost)."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.ga.engine import GAConfig
from repro.ga.temporal import TrackerConfig
from repro.model.annotation import simulate_human_annotation
from repro.model.fitness import FitnessConfig
from repro.pipeline import AnalyzerConfig
from repro.serialization import annotation_to_dict
from repro.service import (
    ServiceHandle,
    decode_video,
    encode_video,
    request_analysis,
)


@pytest.fixture(scope="module")
def jump():
    from repro.video.synthesis import SyntheticJumpConfig, synthesize_jump

    return synthesize_jump(SyntheticJumpConfig(seed=0))


@pytest.fixture(scope="module")
def service():
    config = AnalyzerConfig(
        tracker=TrackerConfig(
            ga=GAConfig(population_size=24, max_generations=8, patience=4),
            fitness=FitnessConfig(max_points=400),
            containment_margin=1,
            min_inside_fraction=0.95,
            containment_samples=7,
        )
    )
    handle = ServiceHandle(config=config).start()
    yield handle
    handle.stop()


def _get(url: str) -> tuple[int, dict]:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


class TestCodec:
    def test_video_roundtrip(self, jump):
        payload = encode_video(jump.video)
        back = decode_video(payload)
        assert np.allclose(back.frames, jump.video.frames)

    def test_decode_garbage(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            decode_video("not base64!!")


class TestEndpoints:
    def test_health(self, service):
        status, payload = _get(f"{service.address}/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["in_flight"] == 0
        assert payload["max_concurrent"] >= 1
        assert payload["last_error"] is None

    def test_standards(self, service):
        status, payload = _get(f"{service.address}/standards")
        assert status == 200
        assert len(payload["standards"]) == 7
        assert len(payload["rules"]) == 7
        assert payload["rules"][0]["rule"] == "R1"

    def test_unknown_path(self, service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{service.address}/nope")
        assert excinfo.value.code == 404

    def test_analyze_roundtrip(self, service, jump):
        annotation = simulate_human_annotation(
            jump.motion.poses[0],
            jump.dims,
            mask=jump.person_masks[0],
            rng=np.random.default_rng(0),
        )
        result = request_analysis(
            service.address,
            jump.video,
            annotation_dict=annotation_to_dict(annotation),
            seed=1,
        )
        assert "report" in result and "advice" in result["report"]
        assert len(result["poses"]) == 20
        assert result["measurement"]["distance_px"] > 0
        assert 0.0 <= result["report"]["score"] <= 1.0

    def test_analyze_bad_payload(self, service):
        request = urllib.request.Request(
            f"{service.address}/analyze",
            data=json.dumps({"video_npz_b64": "###"}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_analyze_missing_video(self, service):
        request = urllib.request.Request(
            f"{service.address}/analyze",
            data=b"{}",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


class TestProfilesAPI:
    """The profile-aware v1 surface: listing, selection, rejection."""

    def test_get_profiles(self, service):
        status, payload = _get(f"{service.address}/profiles")
        assert status == 200
        names = [p["name"] for p in payload["profiles"]]
        assert names == ["standing_long_jump", "sit_to_stand"]
        for profile in payload["profiles"]:
            assert profile["title"]
            assert profile["distance_label"]
            assert len(profile["standards"]) == len(profile["rules"])
            for rule in profile["rules"]:
                assert set(rule) >= {
                    "rule",
                    "standard",
                    "expression",
                    "threshold_deg",
                    "direction",
                }

    def test_unknown_profile_is_structured_400(self, service, jump):
        request = urllib.request.Request(
            f"{service.address}/analyze",
            data=json.dumps(
                {"video_npz_b64": encode_video(jump.video), "profile": "backflip"}
            ).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert body["error"]["type"] == "unknown_profile"
        assert body["error"]["detail"]["valid_profiles"] == [
            "standing_long_jump",
            "sit_to_stand",
        ]

    def test_non_string_profile_is_bad_config(self, service, jump):
        request = urllib.request.Request(
            f"{service.address}/analyze",
            data=json.dumps(
                {"video_npz_b64": encode_video(jump.video), "profile": 7}
            ).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert body["error"]["type"] == "bad_config"

    def test_payload_carries_attempts_and_localization(self, service, jump):
        annotation = simulate_human_annotation(
            jump.motion.poses[0],
            jump.dims,
            mask=jump.person_masks[0],
            rng=np.random.default_rng(0),
        )
        from repro.client import ServiceClient
        from repro.serialization import annotation_to_dict

        client = ServiceClient(service.address)
        result = client.analyze(
            jump.video,
            annotation=annotation_to_dict(annotation),
            seed=1,
            profile="standing_long_jump",
        )
        # Classic single-attempt clip: the synthesised a0 mirrors the
        # top-level fields (PR 7's `tracks` backward-compat pattern).
        assert result["localization"] == {"enabled": False}
        (attempt,) = result["attempts"]
        assert attempt["attempt_id"] == "a0"
        assert attempt["primary"] is True
        assert attempt["window"]["start"] == 0
        assert attempt["window"]["end"] == len(jump.video)
        assert attempt["report"]["score"] == result["report"]["score"]
        assert result["report"]["profile"] == "standing_long_jump"
