"""Tests for jump persistence and the bystander distractor."""

import numpy as np
import pytest

from repro.errors import VideoError
from repro.imaging.metrics import iou
from repro.scoring.standards import Standard
from repro.segmentation.pipeline import SegmentationPipeline
from repro.video.synthesis import (
    ExtraActor,
    SyntheticJumpConfig,
    load_jump,
    save_jump,
    synthesize_jump,
)


@pytest.fixture(scope="module")
def bystander_jump():
    return synthesize_jump(SyntheticJumpConfig(seed=2, bystander=True))


class TestPersistence:
    def test_roundtrip_everything(self, tmp_path):
        jump = synthesize_jump(
            SyntheticJumpConfig(seed=9, violated=(Standard.E4,))
        )
        path = tmp_path / "jump.npz"
        save_jump(path, jump)
        back = load_jump(path)
        assert np.allclose(back.video.frames, jump.video.frames)
        assert all(
            (a == b).all() for a, b in zip(back.person_masks, jump.person_masks)
        )
        assert all(
            (a == b).all() for a, b in zip(back.shadow_masks, jump.shadow_masks)
        )
        assert back.config.violated == (Standard.E4,)
        assert back.config.seed == 9
        assert back.motion.phases == jump.motion.phases
        assert all(a == b for a, b in zip(back.motion.poses, jump.motion.poses))
        assert back.dims.lengths == jump.dims.lengths

    def test_roundtrip_with_bystander_masks(self, tmp_path, bystander_jump):
        path = tmp_path / "bystander.npz"
        save_jump(path, bystander_jump)
        back = load_jump(path)
        assert back.config.bystander
        assert len(back.distractor_masks) == bystander_jump.num_frames
        assert all(
            (a == b).all()
            for a, b in zip(back.distractor_masks, bystander_jump.distractor_masks)
        )

    def test_roundtrip_with_degradations(self, tmp_path):
        jump = synthesize_jump(
            SyntheticJumpConfig(
                seed=3, camera_jitter=1.5, motion_blur_samples=2
            )
        )
        path = tmp_path / "degraded.npz"
        save_jump(path, jump)
        back = load_jump(path)
        assert back.config.camera_jitter == 1.5
        assert back.config.motion_blur_samples == 2
        assert np.allclose(back.video.frames, jump.video.frames)

    def test_reject_foreign_npz(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(VideoError):
            load_jump(path)


class TestBystander:
    def test_distractor_masks_populated(self, bystander_jump):
        assert len(bystander_jump.distractor_masks) == bystander_jump.num_frames
        assert all(mask.any() for mask in bystander_jump.distractor_masks)

    def test_distractor_disjoint_from_jumper(self, bystander_jump):
        for k in range(bystander_jump.num_frames):
            assert not (
                bystander_jump.person_masks[k]
                & bystander_jump.distractor_masks[k]
            ).any()

    def test_no_bystander_by_default(self, jump):
        assert jump.distractor_masks == ()

    def test_pipeline_rejects_bystander(self, bystander_jump):
        pipeline = SegmentationPipeline()
        segmentations = pipeline.segment_video(bystander_jump.video)
        leaks = sum(
            int((seg.person & bystander_jump.distractor_masks[k]).sum())
            for k, seg in enumerate(segmentations)
        )
        assert leaks < 50, "the swaying bystander must not enter the silhouette"
        scores = [
            iou(seg.person, bystander_jump.person_masks[k])
            for k, seg in enumerate(segmentations)
        ]
        assert float(np.mean(scores)) > 0.9

    def test_extra_actor_length_validated(self, jump):
        from repro.video.synthesis import render_poses
        from repro.video.synthesis.scene import Scene

        actor = ExtraActor(
            poses=jump.motion.poses[:3], dims=jump.dims,
            appearance=jump.config.appearance,
        )
        with pytest.raises(ValueError):
            render_poses(
                jump.motion.poses, jump.dims, Scene(jump.config.scene),
                extras=[actor],
            )
