"""Tests for background estimation (Step 1)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, VideoError
from repro.imaging.metrics import rmse
from repro.segmentation.background import (
    ChangeDetectionBackgroundEstimator,
    ChangeDetectionConfig,
    MedianBackgroundEstimator,
)
from repro.video.sequence import VideoSequence


def _static_video_with_transient(n=10, h=12, w=16):
    """Static background with a block passing through frames 4-5."""
    rng = np.random.default_rng(0)
    background = rng.random((h, w, 3)) * 0.5 + 0.25
    frames = []
    for k in range(n):
        frame = background.copy()
        if k in (4, 5):
            frame[4:8, 4 + k : 8 + k] = (0.9, 0.1, 0.1)
        frames.append(frame)
    return VideoSequence(frames), background


class TestChangeDetection:
    @pytest.mark.parametrize("aggregation", ["longest_run", "mean", "median"])
    def test_recovers_static_background(self, aggregation):
        video, background = _static_video_with_transient()
        estimator = ChangeDetectionBackgroundEstimator(
            ChangeDetectionConfig(aggregation=aggregation)
        )
        result = estimator.estimate(video)
        assert rmse(result.background, background) < 0.02

    def test_longest_run_beats_mean_on_long_dwell(self):
        # Object parked on frames 0..4 of 12, then gone: the post-exit
        # background run (7 pairs) beats the object run (4 pairs), so
        # longest_run recovers the background while the mean blends the
        # object in.
        rng = np.random.default_rng(1)
        background = rng.random((10, 10, 3)) * 0.4 + 0.3
        frames = []
        for k in range(12):
            frame = background.copy()
            if k <= 4:
                frame[2:7, 2:7] = (0.9, 0.05, 0.05)
            frames.append(frame)
        video = VideoSequence(frames)
        run = ChangeDetectionBackgroundEstimator(
            ChangeDetectionConfig(aggregation="longest_run")
        ).estimate(video)
        mean = ChangeDetectionBackgroundEstimator(
            ChangeDetectionConfig(aggregation="mean")
        ).estimate(video)
        assert rmse(run.background, background) < 0.01
        assert rmse(mean.background, background) > 0.05

    def test_support_counts(self):
        video, _ = _static_video_with_transient()
        result = ChangeDetectionBackgroundEstimator().estimate(video)
        assert result.support.max() == len(video) - 1
        assert result.coverage > 0.9

    def test_fallback_for_always_changing_pixel(self):
        rng = np.random.default_rng(2)
        frames = [rng.random((6, 6, 3)) for _ in range(8)]
        result = ChangeDetectionBackgroundEstimator(
            ChangeDetectionConfig(threshold=0.01)
        ).estimate(VideoSequence(frames))
        assert result.fallback_mask.mean() > 0.5
        # fallback equals the temporal median there
        median = np.median(np.stack(frames), axis=0)
        sel = result.fallback_mask
        assert np.allclose(result.background[sel], median[sel])

    def test_needs_two_frames(self):
        video = VideoSequence([np.zeros((4, 4, 3))])
        with pytest.raises(VideoError):
            ChangeDetectionBackgroundEstimator().estimate(video)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ChangeDetectionConfig(threshold=0.0)
        with pytest.raises(ConfigurationError):
            ChangeDetectionConfig(aggregation="mode")


class TestMedianBaseline:
    def test_median_recovers_background(self):
        video, background = _static_video_with_transient()
        result = MedianBackgroundEstimator().estimate(video)
        assert rmse(result.background, background) < 0.02
        assert result.coverage == 1.0


class TestOnSyntheticJump:
    def test_background_close_to_truth(self, jump):
        result = ChangeDetectionBackgroundEstimator().estimate(jump.video)
        assert rmse(result.background, jump.background) < 0.05
