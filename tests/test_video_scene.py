"""Tests for static scene generation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.video.synthesis.scene import Scene, SceneConfig


class TestSceneConfig:
    def test_ground_row(self):
        config = SceneConfig(height=120, ground_level=12.0)
        assert config.ground_row == 107

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SceneConfig(height=8, width=8)
        with pytest.raises(ConfigurationError):
            SceneConfig(ground_level=0.0)
        with pytest.raises(ConfigurationError):
            SceneConfig(ground_level=500.0)
        with pytest.raises(ConfigurationError):
            SceneConfig(texture_strength=-0.1)


class TestScene:
    def test_deterministic_under_seed(self):
        a = Scene(SceneConfig(seed=5)).background
        b = Scene(SceneConfig(seed=5)).background
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = Scene(SceneConfig(seed=5)).background
        b = Scene(SceneConfig(seed=6)).background
        assert not np.array_equal(a, b)

    def test_values_in_range(self):
        bg = Scene().background
        assert bg.min() >= 0.0 and bg.max() <= 1.0

    def test_floor_differs_from_wall(self):
        scene = Scene()
        bg = scene.background
        wall = bg[: scene.ground_row - 5].mean(axis=(0, 1))
        floor = bg[scene.ground_row + 2 :].mean(axis=(0, 1))
        assert np.abs(wall - floor).max() > 0.05

    def test_background_is_copy(self):
        scene = Scene()
        bg = scene.background
        bg[:] = 0.0
        assert scene.background.max() > 0.0
