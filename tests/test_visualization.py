"""Tests for analysis visualisation rendering."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.model.pose import StickPose
from repro.model.sticks import default_body
from repro.visualization import (
    analysis_strip,
    angle_chart,
    draw_pose_overlay,
    mask_to_rgb,
    segmentation_panel,
)

BODY = default_body(60.0)


class TestPoseOverlay:
    def test_draws_on_copy(self):
        frame = np.full((120, 160, 3), 0.5)
        pose = StickPose.standing(60.0, 50.0)
        out = draw_pose_overlay(frame, pose, BODY)
        assert out is not frame
        assert np.allclose(frame, 0.5)  # input untouched
        changed = np.abs(out - frame).max(axis=-1) > 0.05
        assert 50 < changed.sum() < 2000

    def test_overlay_near_pose_location(self):
        frame = np.zeros((120, 160, 3))
        pose = StickPose.standing(40.0, 50.0)
        out = draw_pose_overlay(frame, pose, BODY, joint_radius=0.0)
        rows, cols = np.nonzero(out.max(axis=-1) > 0.1)
        assert 25 <= cols.mean() <= 55


class TestStripAndPanel:
    def test_strip_dimensions(self, jump):
        strip = analysis_strip(
            list(jump.person_masks),
            list(jump.motion.poses),
            jump.dims,
            frame_indices=[0, 5, 10],
        )
        assert strip.shape == (120, 160 * 3, 3)

    def test_strip_with_truth(self, jump):
        strip = analysis_strip(
            [jump.video[k] for k in range(jump.num_frames)],
            list(jump.motion.poses),
            jump.dims,
            truth=list(jump.motion.poses),
            frame_indices=[4],
        )
        assert strip.shape == (120, 160, 3)

    def test_strip_length_mismatch(self, jump):
        with pytest.raises(ImageError):
            analysis_strip([jump.person_masks[0]], list(jump.motion.poses), jump.dims)

    def test_mask_to_rgb(self):
        mask = np.eye(4, dtype=bool)
        rgb = mask_to_rgb(mask)
        assert rgb.shape == (4, 4, 3)
        assert rgb[0, 0, 0] > 0 and rgb[0, 1, 0] == 0

    def test_segmentation_panel(self, jump):
        from repro.segmentation import SegmentationPipeline

        pipeline = SegmentationPipeline()
        pipeline.fit(jump.video)
        seg = pipeline.segment(jump.video[8])
        panel = segmentation_panel(seg.stages())
        assert panel.shape == (120, 160 * 5, 3)

    def test_empty_panel_rejected(self):
        with pytest.raises(ImageError):
            segmentation_panel({})


class TestAngleChart:
    def test_renders_tracks(self):
        tracks = {
            "trunk": np.linspace(0, 60, 20),
            "arm": 180 + 90 * np.sin(np.linspace(0, 3, 20)),
        }
        chart = angle_chart(tracks)
        assert chart.shape == (160, 320, 3)
        # the chart is not blank
        assert chart.std() > 0.01

    def test_custom_size_and_range(self):
        chart = angle_chart({"a": np.arange(10.0)}, height=80, width=100,
                            y_range=(0.0, 20.0))
        assert chart.shape == (80, 100, 3)

    def test_validation(self):
        with pytest.raises(ImageError):
            angle_chart({})
        with pytest.raises(ImageError):
            angle_chart({"a": np.array([1.0])})
