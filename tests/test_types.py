"""Tests for shared value types."""

import numpy as np
import pytest

from repro.types import BoundingBox, Point, Segment, mask_bounding_box


class TestPoint:
    def test_iteration_and_array(self):
        p = Point(1.0, 2.0)
        assert tuple(p) == (1.0, 2.0)
        assert np.allclose(p.as_array(), [1.0, 2.0])

    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_translated(self):
        assert Point(1, 1).translated(2, -1) == Point(3, 0)


class TestSegment:
    def test_length_and_midpoint(self):
        seg = Segment(Point(0, 0), Point(6, 8))
        assert seg.length == 10.0
        assert seg.midpoint == Point(3, 4)

    def test_as_array(self):
        seg = Segment(Point(1, 2), Point(3, 4))
        assert seg.as_array().shape == (2, 2)


class TestBoundingBox:
    def test_dimensions(self):
        box = BoundingBox(2, 3, 5, 9)
        assert box.height == 4
        assert box.width == 7
        assert box.area == 28
        assert box.center == (3.5, 6.0)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(5, 0, 2, 3)

    def test_contains(self):
        box = BoundingBox(0, 0, 4, 4)
        assert box.contains(4, 4)
        assert not box.contains(5, 0)

    def test_expanded_with_clip(self):
        box = BoundingBox(1, 1, 3, 3).expanded(2, shape=(5, 5))
        assert box == BoundingBox(0, 0, 4, 4)

    def test_intersection(self):
        a = BoundingBox(0, 0, 4, 4)
        b = BoundingBox(2, 2, 6, 6)
        assert a.intersection(b) == BoundingBox(2, 2, 4, 4)
        assert a.intersection(BoundingBox(10, 10, 12, 12)) is None

    def test_slices(self):
        box = BoundingBox(1, 2, 3, 4)
        mask = np.zeros((6, 6))
        mask[box.slices()] = 1
        assert mask.sum() == box.area


class TestMaskBoundingBox:
    def test_finds_extent(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[2, 3] = mask[5, 6] = True
        assert mask_bounding_box(mask) == BoundingBox(2, 3, 5, 6)

    def test_empty_is_none(self):
        assert mask_bounding_box(np.zeros((4, 4), dtype=bool)) is None
