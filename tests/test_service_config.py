"""Tests for the service's configuration surface.

``GET /config`` exposes the resolved defaults + hash; ``POST /analyze``
accepts a per-request ``config`` block / ``preset`` name, answering bad
keys with a structured 400.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.config import config_to_dict
from repro.ga.engine import GAConfig
from repro.ga.temporal import TrackerConfig
from repro.model.fitness import FitnessConfig
from repro.pipeline import AnalyzerConfig
from repro.service import ServiceHandle, encode_video, request_analysis


@pytest.fixture(scope="module")
def tiny_jump():
    from repro.video.synthesis import (
        JumpParameters,
        SyntheticJumpConfig,
        synthesize_jump,
    )

    return synthesize_jump(
        SyntheticJumpConfig(seed=5, params=JumpParameters(num_frames=8))
    )


@pytest.fixture(scope="module")
def default_config():
    return AnalyzerConfig(
        tracker=TrackerConfig(
            ga=GAConfig(population_size=20, max_generations=6, patience=3),
            fitness=FitnessConfig(max_points=300),
        )
    )


@pytest.fixture(scope="module")
def service(default_config):
    handle = ServiceHandle(config=default_config).start()
    yield handle
    handle.stop()


def _post(service, body: dict) -> urllib.request.Request:
    return urllib.request.Request(
        f"{service.address}/analyze",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )


class TestConfigEndpoint:
    def test_resolved_defaults_and_hash(self, service, default_config):
        with urllib.request.urlopen(f"{service.address}/config", timeout=10) as r:
            payload = json.loads(r.read())
        assert payload["config"] == config_to_dict(default_config)
        assert payload["config_hash"] == default_config.hash
        assert {"paper", "fast", "accurate"} <= set(payload["presets"])


class TestPerRequestConfig:
    def test_config_block_overrides_defaults(self, service, tiny_jump):
        result = request_analysis(
            service.address,
            tiny_jump.video,
            config={"tracker": {"ga": {"max_generations": 2}}},
        )
        assert result["config"]["tracker"]["ga"]["max_generations"] == 2
        # merged over the server defaults, not the library defaults
        assert result["config"]["tracker"]["ga"]["population_size"] == 20
        assert result["config_hash"]
        assert result["trace"]["metadata"]["config_hash"] == result["config_hash"]

    def test_response_echoes_default_config_hash(self, service, tiny_jump, default_config):
        result = request_analysis(service.address, tiny_jump.video)
        assert result["config_hash"] == default_config.hash

    def test_unknown_config_key_is_structured_400(self, service, tiny_jump):
        request = _post(
            service,
            {
                "video_npz_b64": encode_video(tiny_jump.video),
                "config": {"tracker": {"no_such_knob": 1}},
            },
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        error = json.loads(excinfo.value.read())["error"]
        assert error["type"] == "bad_config"
        assert "no_such_knob" in error["message"]

    def test_ill_typed_value_is_structured_400(self, service, tiny_jump):
        request = _post(
            service,
            {
                "video_npz_b64": encode_video(tiny_jump.video),
                "config": {"tracker": {"ga": {"max_generations": "banana"}}},
            },
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        error = json.loads(excinfo.value.read())["error"]
        assert error["type"] == "bad_config"
        assert "tracker.ga.max_generations" in error["message"]

    def test_unknown_preset_is_structured_400(self, service, tiny_jump):
        request = _post(
            service,
            {
                "video_npz_b64": encode_video(tiny_jump.video),
                "preset": "warp-speed",
            },
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"]["type"] == "bad_config"

    def test_non_object_config_is_400(self, service, tiny_jump):
        request = _post(
            service,
            {"video_npz_b64": encode_video(tiny_jump.video), "config": [1, 2]},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
