"""Shared-memory frame plane: lifecycle, parity, and degradation.

Three properties make the shm path safe to have on by default:

* **no leaks** — every test asserts /dev/shm is as clean after the
  run as before it, including when a worker is SIGKILLed mid-batch;
* **byte parity** — the shm fan-out returns exactly what the serial
  loop returns, mask for mask;
* **graceful degradation** — any shm failure falls back to the
  pickled path with a logged warning and a counter bump, never a
  crashed analysis.

Several tests set ``oversubscribe`` on the :class:`ParallelConfig`:
CI runners are often single-CPU, where the default CPU cap would
collapse the pool to in-process execution and the cross-process code
path under test would never run.
"""

from __future__ import annotations

import os
import pickle
import signal

import numpy as np
import pytest

from repro.config import get_preset
from repro.perf import shm
from repro.perf.executors import ParallelConfig
from repro.perf.shm import FrameDescriptor, SharedFrameArena
from repro.segmentation.pipeline import SegmentationPipeline
from repro.video.synthesis import (
    JumpParameters,
    SyntheticJumpConfig,
    synthesize_jump,
)

SHM_DIR = "/dev/shm"


def _shm_segments() -> set[str]:
    """Names of this suite's segments currently backing files."""
    if not os.path.isdir(SHM_DIR):  # non-Linux: nothing to snapshot
        return set()
    return {
        name
        for name in os.listdir(SHM_DIR)
        if name.startswith(shm.SEGMENT_PREFIX)
    }


@pytest.fixture(autouse=True)
def _no_leaked_segments():
    """Every test must leave /dev/shm exactly as it found it."""
    shm.reset_fallback_count()
    before = _shm_segments()
    yield
    shm.detach_all()
    leaked = _shm_segments() - before
    assert leaked == set(), f"leaked shm segments: {sorted(leaked)}"
    assert SharedFrameArena.active_segment_count() == 0


@pytest.fixture(scope="module")
def small_jump():
    return synthesize_jump(
        SyntheticJumpConfig(seed=11, params=JumpParameters(num_frames=6))
    )


def _mask_bytes(segmentations) -> list[bytes]:
    out = []
    for seg in segmentations:
        for field in (
            "raw_foreground",
            "after_noise_removal",
            "after_spot_removal",
            "after_hole_fill",
            "detected_shadow",
            "person",
        ):
            out.append(getattr(seg, field).tobytes())
        for candidate in seg.candidates:
            out.append(candidate.tobytes())
    return out


class TestArenaLifecycle:
    def test_create_roundtrip_and_unlink(self):
        stack = np.arange(2 * 3 * 4, dtype=np.float64).reshape(2, 3, 4)
        arena = SharedFrameArena.create(stack)
        try:
            assert len(arena) == 2
            assert arena.shape == (2, 3, 4)
            np.testing.assert_array_equal(arena.array, stack)
            # The arena holds a copy: mutating the source is invisible.
            stack[0, 0, 0] = -1.0
            assert arena.frame(0)[0, 0] == 0.0
        finally:
            arena.close()
            arena.unlink()
        assert arena.name not in _shm_segments()

    def test_attach_sees_creator_writes(self):
        arena = SharedFrameArena.create(np.zeros((3, 4, 4)))
        try:
            arena.array[1] = 7.0
            attached = SharedFrameArena.attach(arena.descriptor(1))
            try:
                np.testing.assert_array_equal(
                    attached.array[1], np.full((4, 4), 7.0)
                )
            finally:
                attached.close()
        finally:
            arena.close()
            arena.unlink()

    def test_create_empty_is_zero_filled(self):
        arena = SharedFrameArena.create_empty((2, 3, 5), np.bool_)
        try:
            assert not arena.array.any()
            assert arena.array.dtype == np.bool_
        finally:
            arena.close()
            arena.unlink()

    def test_refcounted_close(self):
        arena = SharedFrameArena.create(np.ones((2, 2, 2)))
        view = arena.attach_view()
        assert view.shape == (2, 2, 2)
        arena.close()  # drops the extra view's reference
        assert arena.array is not None  # still mapped: one ref left
        arena.close()
        with pytest.raises(shm.SharedMemoryUnavailable):
            arena.attach_view()
        arena.unlink()

    def test_unlink_is_idempotent(self):
        arena = SharedFrameArena.create(np.ones((1, 2, 2)))
        arena.close()
        arena.unlink()
        arena.unlink()  # second call must be a no-op, not an error

    def test_cleanup_all_sweeps_registry(self):
        arenas = [SharedFrameArena.create(np.ones((1, 2, 2))) for _ in range(3)]
        names = {arena.name for arena in arenas}
        assert names <= set(SharedFrameArena.active_segments())
        swept = SharedFrameArena.cleanup_all()
        assert swept >= 3
        assert SharedFrameArena.active_segment_count() == 0

    def test_descriptor_is_tiny(self):
        """The whole point: ~100 bytes crosses the pipe, not the frame."""
        arena = SharedFrameArena.create(np.zeros((48, 240, 320, 3)))
        try:
            descriptor = arena.descriptor(17)
            payload = len(pickle.dumps(descriptor))
            assert payload < 256
            frame_payload = len(pickle.dumps(arena.frame(17).copy()))
            assert frame_payload / payload > 50
        finally:
            arena.close()
            arena.unlink()

    def test_descriptor_roundtrips_through_pickle(self):
        descriptor = FrameDescriptor(
            name="slj-feed-0123", shape=(4, 8, 8, 3), dtype="<f8", index=2
        )
        assert pickle.loads(pickle.dumps(descriptor)) == descriptor

    def test_worker_cache_detach(self):
        arena = SharedFrameArena.create(np.arange(8.0).reshape(2, 2, 2))
        try:
            frame = shm.attached_frame(arena.descriptor(1))
            np.testing.assert_array_equal(frame, arena.frame(1))
            assert not frame.flags.writeable
            # Second attach of the same segment reuses the mapping.
            shm.attached_array(arena.descriptor(0))
            assert shm.detach_all() == 1
        finally:
            arena.close()
            arena.unlink()


class TestSegmentationShmParity:
    def test_shm_processes_byte_identical_to_serial(self, small_jump):
        config = get_preset("fast")
        serial = SegmentationPipeline(config.segmentation).segment_video(
            small_jump.video
        )
        parallel = ParallelConfig(
            backend="processes", workers=2, oversubscribe=True
        )
        pipeline = SegmentationPipeline(config.segmentation, parallel=parallel)
        shm_result = pipeline.segment_video(small_jump.video)
        assert _mask_bytes(serial) == _mask_bytes(shm_result)
        assert shm.fallback_count() == 0
        assert pipeline.instrumentation.counter(
            "segmentation.shm_fallbacks"
        ) == 0

    def test_no_segments_survive_the_batch(self, small_jump):
        config = get_preset("fast")
        parallel = ParallelConfig(
            backend="processes", workers=2, oversubscribe=True
        )
        SegmentationPipeline(
            config.segmentation, parallel=parallel
        ).segment_video(small_jump.video)
        # the autouse fixture asserts /dev/shm is clean afterwards


def _kill_current_worker(descriptor):  # pragma: no cover - dies by design
    os.kill(os.getpid(), signal.SIGKILL)


class TestGracefulDegradation:
    def test_create_failure_falls_back_to_pickled(
        self, small_jump, monkeypatch, caplog
    ):
        config = get_preset("fast")
        serial = SegmentationPipeline(config.segmentation).segment_video(
            small_jump.video
        )
        monkeypatch.setattr(
            SharedFrameArena,
            "create",
            classmethod(
                lambda cls, array: (_ for _ in ()).throw(
                    shm.SharedMemoryUnavailable("no /dev/shm in this jail")
                )
            ),
        )
        parallel = ParallelConfig(
            backend="processes", workers=2, oversubscribe=True
        )
        pipeline = SegmentationPipeline(config.segmentation, parallel=parallel)
        with caplog.at_level("WARNING", logger="repro.perf.shm"):
            result = pipeline.segment_video(small_jump.video)
        assert _mask_bytes(result) == _mask_bytes(serial)
        assert shm.fallback_count() == 1
        assert pipeline.instrumentation.counter(
            "segmentation.shm_fallbacks"
        ) == 1
        assert any(
            "falling back" in record.message.lower()
            or "fallback" in record.message.lower()
            for record in caplog.records
        )

    def test_sigkilled_worker_falls_back_without_leaking(
        self, small_jump, monkeypatch
    ):
        """A worker dying mid-batch breaks the pool, not the analysis."""
        from repro.segmentation import pipeline as pipeline_module

        config = get_preset("fast")
        serial = SegmentationPipeline(config.segmentation).segment_video(
            small_jump.video
        )
        monkeypatch.setattr(
            pipeline_module, "_segment_shm_in_worker", _kill_current_worker
        )
        parallel = ParallelConfig(
            backend="processes", workers=2, oversubscribe=True
        )
        pipeline = SegmentationPipeline(config.segmentation, parallel=parallel)
        result = pipeline.segment_video(small_jump.video)
        assert _mask_bytes(result) == _mask_bytes(serial)
        assert shm.fallback_count() == 1
        # the autouse fixture asserts zero leaked segments


class TestFallbackCounter:
    def test_record_fallback_increments_and_resets(self):
        assert shm.fallback_count() == 0
        assert shm.record_fallback("unit test") == 1
        assert shm.record_fallback("unit test again") == 2
        shm.reset_fallback_count()
        assert shm.fallback_count() == 0
