"""Tests for chromosome layout and gene groups."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.chromosome import (
    GENE_GROUPS,
    GENE_X0,
    GENE_Y0,
    angle_gene,
    chromosome_distance,
    group_spans,
    validate_chromosomes,
)
from repro.model.pose import GENES


class TestLayout:
    def test_gene_count(self):
        assert GENES == 10

    def test_angle_gene_mapping(self):
        assert angle_gene(0) == 2
        assert angle_gene(7) == 9
        with pytest.raises(ModelError):
            angle_gene(8)

    def test_paper_groups(self):
        # (x0,y0) (ρ0) (ρ1,ρ4) (ρ2,ρ5) (ρ3,ρ6,ρ7) with ρl at gene 2+l
        assert GENE_GROUPS == (
            (GENE_X0, GENE_Y0),
            (angle_gene(0),),
            (angle_gene(1), angle_gene(4)),
            (angle_gene(2), angle_gene(5)),
            (angle_gene(3), angle_gene(6), angle_gene(7)),
        )

    def test_groups_partition_genes(self):
        flat = sorted(g for group in GENE_GROUPS for g in group)
        assert flat == list(range(GENES))

    def test_group_spans_are_arrays(self):
        spans = group_spans()
        assert len(spans) == len(GENE_GROUPS)
        assert all(isinstance(span, np.ndarray) for span in spans)


class TestValidation:
    def test_wraps_angles(self):
        genes = np.zeros(GENES)
        genes[2] = -30.0
        out = validate_chromosomes(genes)
        assert out.shape == (1, GENES)
        assert out[0, 2] == pytest.approx(330.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ModelError):
            validate_chromosomes(np.zeros((3, 7)))

    def test_does_not_mutate_input(self):
        genes = np.full((2, GENES), 400.0)
        validate_chromosomes(genes)
        assert (genes == 400.0).all()


class TestDistance:
    def test_zero_for_identical(self):
        genes = np.arange(GENES, dtype=float)
        assert chromosome_distance(genes, genes) == 0.0

    def test_center_term(self):
        a = np.zeros(GENES)
        b = np.zeros(GENES)
        b[0], b[1] = 3.0, 4.0
        assert chromosome_distance(a, b) == pytest.approx(5.0)

    def test_angle_wrap(self):
        a = np.zeros(GENES)
        b = np.zeros(GENES)
        a[2], b[2] = 359.0, 1.0
        assert chromosome_distance(a, b) == pytest.approx(2.0 / 8)
