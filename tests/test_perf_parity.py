"""Parity proofs for the PR-4 performance layer.

Every optimisation behind ``repro.perf`` claims to be numerically
invisible under the default float64 configuration:

* the coordinate-split distance kernel is bitwise equal to the einsum
  reference;
* the coded containment lookup matches the per-stick legacy loop on
  every chromosome, in-frame or not;
* the inline CDF selection draws the same parents from the same RNG
  stream as ``rng.choice``;
* execution backends (serial / threads / processes) produce
  byte-identical analysis serialisations;
* the whole optimised stack reproduces the legacy stack end to end.

The float32 fitness fast path is the one *documented* deviation: this
file also pins its tolerance.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.model.containment import ContainmentChecker
from repro.model.fitness import FitnessConfig, SilhouetteFitness
from repro.model.geometry import (
    _segment_distances_fast,
    _segment_distances_reference,
)
from repro.model.pose import StickPose
from repro.model.sticks import default_body
from repro.perf.compat import legacy_hot_paths
from repro.perf.executors import ParallelConfig
from repro.serialization import analysis_to_dict
from repro.video.synthesis.render import person_mask_for_pose

BODY = default_body(60.0)
SHAPE = (120, 160)


def _setup():
    pose = StickPose.standing(60.0, 50.0)
    mask = person_mask_for_pose(pose, BODY, SHAPE)
    return pose, mask


def _random_genes(rng, count, pose):
    """Chromosomes scattered around a real pose, some far off-frame."""
    base = pose.to_genes()
    genes = base[None, :] + rng.normal(0.0, 8.0, size=(count, base.size))
    genes[:: max(count // 4, 1), 0] += 300.0  # force out-of-frame samples
    return genes


class TestDistanceKernel:
    def test_fast_matches_reference_bitwise(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(-5.0, 120.0, size=(257, 2))
        segments = rng.uniform(0.0, 100.0, size=(13, 2, 2))
        fast = _segment_distances_fast(points, segments)
        reference = _segment_distances_reference(points, segments)
        assert fast.dtype == reference.dtype
        np.testing.assert_array_equal(fast, reference)

    def test_degenerate_segment_bitwise(self):
        rng = np.random.default_rng(1)
        points = rng.uniform(0.0, 50.0, size=(31, 2))
        segments = rng.uniform(0.0, 50.0, size=(4, 2, 2))
        segments[2, 1] = segments[2, 0]  # zero-length stick
        np.testing.assert_array_equal(
            _segment_distances_fast(points, segments),
            _segment_distances_reference(points, segments),
        )


class TestContainmentParity:
    def test_batch_matches_legacy_loop(self):
        pose, mask = _setup()
        checker = ContainmentChecker(mask, BODY)
        genes = _random_genes(np.random.default_rng(2), 64, pose)
        fast = checker.check(genes)
        with legacy_hot_paths():
            legacy = checker.check(genes)
        np.testing.assert_array_equal(fast, legacy)

    def test_single_memoised_path_matches_legacy(self):
        pose, mask = _setup()
        checker = ContainmentChecker(mask, BODY)
        for genes in _random_genes(np.random.default_rng(3), 16, pose):
            with legacy_hot_paths():
                expected = checker.check(genes)
            assert checker.check(genes) == expected
            # Second call hits the verdict cache; must not flip.
            assert checker.check(genes) == expected

    def test_inside_fraction_matches_rederived_reference(self):
        pose, mask = _setup()
        checker = ContainmentChecker(mask, BODY)
        genes = _random_genes(np.random.default_rng(4), 32, pose)
        fractions = checker.inside_fraction(genes)
        from repro.model.geometry import sample_segment_points, world_to_image
        from repro.model.pose import forward_kinematics

        segments = forward_kinematics(genes, BODY)
        for p in range(genes.shape[0]):
            points = sample_segment_points(segments[p], checker._samples)
            rc = world_to_image(points, mask.shape[0])
            rows = np.rint(rc[:, 0]).astype(int)
            cols = np.rint(rc[:, 1]).astype(int)
            in_frame = (
                (rows >= 0)
                & (rows < mask.shape[0])
                & (cols >= 0)
                & (cols < mask.shape[1])
            )
            inside = np.zeros(points.shape[0], dtype=bool)
            inside[in_frame] = checker._region[rows[in_frame], cols[in_frame]]
            assert fractions[p] == inside.mean()


class TestSelectionParity:
    def test_inline_cdf_matches_rng_choice_stream(self):
        """The searchsorted draw consumes the identical RNG stream."""
        weights = np.random.default_rng(5).uniform(0.1, 1.0, size=40)
        weights /= weights.sum()
        cdf = weights.cumsum()
        cdf /= cdf[-1]
        rng_a = np.random.default_rng(6)
        rng_b = np.random.default_rng(6)
        for _ in range(500):
            expected = int(rng_a.choice(weights.size, p=weights))
            inline = int(cdf.searchsorted(rng_b.random(), side="right"))
            assert inline == expected
        # Both generators end in the same state: later draws line up too.
        assert rng_a.random() == rng_b.random()


def _stripped(analysis, drop_config=False):
    payload = analysis_to_dict(analysis)
    payload.pop("trace", None)  # timings differ run to run
    payload["config"].pop("parallel", None)  # execution-only knob
    if drop_config:
        # Legacy-vs-optimised runs legitimately carry different configs
        # (incremental off, fixed chunk); the parity claim is about the
        # numeric output, not the config echo.
        payload.pop("config", None)
        payload.pop("config_hash", None)
    return json.dumps(payload, sort_keys=True)


def _analyze(config, jump, annotation, seed=3):
    from repro.pipeline import JumpAnalyzer

    return JumpAnalyzer(config).analyze(
        jump.video, annotation=annotation, rng=np.random.default_rng(seed)
    )


@pytest.fixture(scope="module")
def small_jump():
    from repro.model.annotation import simulate_human_annotation
    from repro.video.synthesis.dataset import SyntheticJumpConfig, synthesize_jump
    from repro.video.synthesis.motion import JumpParameters

    jump = synthesize_jump(
        SyntheticJumpConfig(seed=3, params=JumpParameters(num_frames=6))
    )
    annotation = simulate_human_annotation(
        jump.motion.poses[0],
        jump.dims,
        mask=jump.person_masks[0],
        rng=np.random.default_rng(3),
    )
    return jump, annotation


class TestEndToEndParity:
    def test_backends_are_byte_identical(self, small_jump):
        from repro.config import get_preset

        jump, annotation = small_jump
        outputs = {}
        for backend in ("serial", "threads", "processes"):
            # oversubscribe: a single-CPU runner would otherwise cap the
            # pool to one worker and run in-process, and this test must
            # prove parity across a *real* pool (shm fan-out included).
            config = dataclasses.replace(
                get_preset("fast"),
                parallel=ParallelConfig(
                    backend=backend, workers=2, oversubscribe=True
                ),
            )
            outputs[backend] = _stripped(_analyze(config, jump, annotation))
        assert outputs["serial"] == outputs["threads"]
        assert outputs["serial"] == outputs["processes"]

    def test_optimized_stack_matches_legacy_stack(self, small_jump):
        """Defaults vs pre-PR-4 kernels + full GA re-evaluation."""
        from repro.config import get_preset

        jump, annotation = small_jump
        config = get_preset("fast")
        optimized = _stripped(_analyze(config, jump, annotation), drop_config=True)

        tracker = config.tracker
        legacy_config = dataclasses.replace(
            config,
            parallel=ParallelConfig(),
            tracker=dataclasses.replace(
                tracker,
                ga=dataclasses.replace(tracker.ga, incremental=False),
                fitness=dataclasses.replace(tracker.fitness, chunk_size=64),
            ),
        )
        with legacy_hot_paths():
            legacy = _stripped(
                _analyze(legacy_config, jump, annotation), drop_config=True
            )
        assert optimized == legacy


class TestFitnessPrecision:
    def test_chunking_only_moves_scores_by_ulps(self):
        """Chunk width reorders the final mean's summation, nothing more."""
        pose, mask = _setup()
        genes = _random_genes(np.random.default_rng(7), 48, pose)
        scores = {
            chunk: SilhouetteFitness(
                mask, BODY, FitnessConfig(chunk_size=chunk)
            ).evaluate(genes)
            for chunk in (0, 1, 7, 64)
        }
        for chunk, values in scores.items():
            np.testing.assert_allclose(values, scores[0], rtol=1e-13, atol=0.0)

    def test_float32_fast_path_stays_within_tolerance(self):
        pose, mask = _setup()
        genes = _random_genes(np.random.default_rng(8), 48, pose)
        exact = SilhouetteFitness(mask, BODY, FitnessConfig()).evaluate(genes)
        fast = SilhouetteFitness(
            mask, BODY, FitnessConfig(precision="float32")
        ).evaluate(genes)
        assert np.all(np.abs(fast - exact) <= 5e-3 * np.abs(exact))
