"""Tests for top-level CLI error handling: one line, exit code 2."""

import numpy as np
import pytest

from repro import cli
from repro.errors import TrackingError, VideoError


class TestAnalyzeErrors:
    def test_bad_video_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "video.npz"
        np.savez(bad, not_frames=np.zeros(3))
        rc = cli.main(["analyze", str(bad), "--annotation", "auto", "--fast"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error[VideoError]:")
        assert err.count("\n") == 1  # one line, no traceback

    def test_message_names_the_problem(self, tmp_path, capsys):
        bad = tmp_path / "video.npz"
        np.savez(bad, not_frames=np.zeros(3))
        rc = cli.main(["analyze", str(bad), "--annotation", "auto", "--fast"])
        assert rc == 2
        assert "'frames'" in capsys.readouterr().err


class TestDemoErrors:
    def test_analysis_failure_exits_2(self, monkeypatch, capsys):
        class _ExplodingAnalyzer:
            def __init__(self, *args, **kwargs):
                pass

            def analyze(self, *args, **kwargs):
                raise TrackingError("lost the jumper")

        monkeypatch.setattr(cli, "JumpAnalyzer", _ExplodingAnalyzer)
        rc = cli.main(["demo", "--fast"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error[TrackingError]: lost the jumper")


class TestErrorFormat:
    @pytest.mark.parametrize("exc", [VideoError("v"), TrackingError("t")])
    def test_subclass_name_is_reported(self, monkeypatch, capsys, exc):
        monkeypatch.setattr(
            cli,
            "build_parser",
            lambda: _StaticParser(lambda args: (_ for _ in ()).throw(exc)),
        )
        rc = cli.main([])
        assert rc == 2
        assert f"error[{type(exc).__name__}]: " in capsys.readouterr().err


class _StaticParser:
    """Parser stub whose parsed args always dispatch to ``func``."""

    def __init__(self, func):
        self._func = func

    def parse_args(self, argv):
        import argparse

        return argparse.Namespace(func=self._func)
