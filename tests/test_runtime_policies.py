"""Tests for per-stage retry/fallback policies on the pipeline runner."""

import pytest

from repro.errors import ConfigurationError, ReproError, TrackingError
from repro.runtime import (
    CATCHABLE_ERRORS,
    FallbackPolicy,
    FunctionStage,
    Instrumentation,
    MemorySink,
    PipelineRunner,
    RetryPolicy,
    StagePolicy,
    falling_back,
    resolve_catch,
    retrying,
)


class _FlakyStage:
    """Fails the first ``failures`` calls, then succeeds."""

    def __init__(self, name="flaky", failures=1, exc=TrackingError("boom")):
        self.name = name
        self.calls = 0
        self._failures = failures
        self._exc = exc

    def run(self, value, context):
        self.calls += 1
        if self.calls <= self._failures:
            raise self._exc
        return value + 1


class TestResolveCatch:
    def test_known_names(self):
        exceptions = resolve_catch(("ReproError", "ValueError"))
        assert ReproError in exceptions and ValueError in exceptions

    def test_repro_hierarchy_in_vocabulary(self):
        assert "TrackingError" in CATCHABLE_ERRORS
        assert "SegmentationError" in CATCHABLE_ERRORS

    def test_unknown_name_lists_vocabulary(self):
        with pytest.raises(ConfigurationError, match="ReproError"):
            resolve_catch(("NoSuchError",))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_catch(())


class TestPolicyValidation:
    def test_retry_needs_positive_attempts(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)

    def test_retry_bad_catch_eagerly_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=2, catch=("Bogus",))

    def test_fallback_bad_catch_eagerly_rejected(self):
        with pytest.raises(ConfigurationError):
            FallbackPolicy(substitute=None, catch=("Bogus",))

    def test_shorthands(self):
        assert retrying(3).retry.max_attempts == 3
        assert falling_back(42).fallback.produce(None, None) == 42

    def test_unknown_stage_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown stage"):
            PipelineRunner(
                [FunctionStage("a", lambda v, c: v)],
                policies={"b": retrying(2)},
            )

    def test_non_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="StagePolicy"):
            PipelineRunner(
                [FunctionStage("a", lambda v, c: v)],
                policies={"a": "not a policy"},
            )


class TestRetry:
    def test_retry_recovers(self):
        stage = _FlakyStage(failures=1)
        runner = PipelineRunner([stage], policies={"flaky": retrying(2)})
        outcome = runner.run(0)
        assert outcome.value == 1
        assert stage.calls == 2
        assert outcome.trace.degraded is False
        assert outcome.trace.counter("runtime.retries") == 1

    def test_retry_exhausted_raises(self):
        stage = _FlakyStage(failures=5)
        runner = PipelineRunner([stage], policies={"flaky": retrying(3)})
        with pytest.raises(TrackingError):
            runner.run(0)
        assert stage.calls == 3

    def test_retry_ignores_uncaught_types(self):
        stage = _FlakyStage(failures=1, exc=KeyError("nope"))
        runner = PipelineRunner(
            [stage], policies={"flaky": retrying(3, catch=("ReproError",))}
        )
        with pytest.raises(KeyError):
            runner.run(0)
        assert stage.calls == 1

    def test_retry_event_recorded(self):
        sink = MemorySink()
        stage = _FlakyStage(failures=1)
        runner = PipelineRunner([stage], policies={"flaky": retrying(2)})
        runner.run(0, instrumentation=Instrumentation(sink=sink))
        events = [e for e in sink.events if e.name == "runtime/retry"]
        assert len(events) == 1
        assert events[0].field_dict()["stage"] == "flaky"
        assert events[0].field_dict()["error"] == "TrackingError"


class TestFallback:
    def test_fallback_substitutes_and_degrades(self):
        stage = _FlakyStage(failures=99)
        runner = PipelineRunner(
            [stage], policies={"flaky": falling_back(-7)}
        )
        outcome = runner.run(0)
        assert outcome.value == -7
        assert outcome.trace.degraded is True
        assert outcome.trace.degraded_stages == ("flaky",)
        assert outcome.trace.counter("runtime.fallbacks") == 1

    def test_fallback_callable_sees_value_and_context(self):
        stage = _FlakyStage(failures=99)
        policy = StagePolicy(
            fallback=FallbackPolicy(substitute=lambda value, ctx: value * 10)
        )
        runner = PipelineRunner([stage], policies={"flaky": policy})
        assert runner.run(3).value == 30

    def test_retry_then_fallback(self):
        stage = _FlakyStage(failures=99)
        policy = StagePolicy(
            retry=RetryPolicy(max_attempts=2),
            fallback=FallbackPolicy(substitute=0),
        )
        runner = PipelineRunner([stage], policies={"flaky": policy})
        outcome = runner.run(5)
        assert stage.calls == 2
        assert outcome.value == 0
        assert outcome.trace.degraded

    def test_fallback_ignores_uncaught_types(self):
        stage = _FlakyStage(failures=99, exc=KeyError("nope"))
        runner = PipelineRunner(
            [stage], policies={"flaky": falling_back(0)}
        )
        with pytest.raises(KeyError):
            runner.run(0)

    def test_degradation_details_in_metadata(self):
        stage = _FlakyStage(failures=99)
        runner = PipelineRunner([stage], policies={"flaky": falling_back(0)})
        outcome = runner.run(0)
        (record,) = outcome.context.metadata["degraded_stages"]
        assert record["stage"] == "flaky"
        assert record["error_type"] == "TrackingError"

    def test_trace_to_dict_carries_degradation(self):
        stage = _FlakyStage(failures=99)
        runner = PipelineRunner([stage], policies={"flaky": falling_back(0)})
        data = runner.run(0).trace.to_dict()
        assert data["degraded"] is True
        assert data["degraded_stages"] == ["flaky"]

    def test_without_policies_failures_propagate(self):
        stage = _FlakyStage(failures=1)
        runner = PipelineRunner([stage])
        with pytest.raises(TrackingError):
            runner.run(0)
