"""Tests for image containers and validation (repro.imaging.image)."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.image import (
    blank_mask,
    blank_rgb,
    ensure_gray,
    ensure_mask,
    ensure_rgb,
    ensure_same_shape,
    rgb_to_gray,
    to_uint8,
)


class TestEnsureRgb:
    def test_accepts_float_in_range(self):
        image = np.random.default_rng(0).random((4, 5, 3))
        out = ensure_rgb(image)
        assert out.shape == (4, 5, 3)
        assert out.dtype == np.float64

    def test_converts_uint8(self):
        image = np.full((2, 2, 3), 255, dtype=np.uint8)
        out = ensure_rgb(image)
        assert np.allclose(out, 1.0)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ImageError, match="shape"):
            ensure_rgb(np.zeros((4, 5)))

    def test_rejects_out_of_range(self):
        with pytest.raises(ImageError, match="range|\\[0, 1\\]"):
            ensure_rgb(np.full((2, 2, 3), 3.0))

    def test_clips_tiny_numeric_noise(self):
        image = np.full((2, 2, 3), 1.0 + 1e-12)
        out = ensure_rgb(image)
        assert out.max() <= 1.0


class TestEnsureGray:
    def test_accepts_2d(self):
        out = ensure_gray(np.zeros((3, 4)))
        assert out.shape == (3, 4)

    def test_rejects_3d(self):
        with pytest.raises(ImageError):
            ensure_gray(np.zeros((3, 4, 3)))

    def test_uint8_scaled(self):
        out = ensure_gray(np.full((2, 2), 128, dtype=np.uint8))
        assert np.allclose(out, 128 / 255)


class TestEnsureMask:
    def test_bool_passthrough(self):
        mask = np.zeros((3, 3), dtype=bool)
        assert ensure_mask(mask) is mask

    def test_zero_one_ints_accepted(self):
        out = ensure_mask(np.array([[0, 1], [1, 0]]))
        assert out.dtype == bool
        assert out[0, 1]

    def test_other_values_rejected(self):
        with pytest.raises(ImageError, match="0/1"):
            ensure_mask(np.array([[0, 2]]))

    def test_float_zero_one_accepted(self):
        out = ensure_mask(np.array([[0.0, 1.0], [1.0, 0.0]]))
        assert out.dtype == bool and out[0, 1] and not out[0, 0]

    def test_nan_rejected(self):
        with pytest.raises(ImageError, match="0/1"):
            ensure_mask(np.array([[0.0, np.nan]]))

    def test_fractional_values_rejected(self):
        with pytest.raises(ImageError, match="0/1"):
            ensure_mask(np.array([[0.5, 1.0]]))

    def test_non_2d_rejected(self):
        with pytest.raises(ImageError):
            ensure_mask(np.zeros((2, 2, 2), dtype=bool))


class TestHelpers:
    def test_ensure_same_shape_raises(self):
        with pytest.raises(ImageError, match="identical shapes"):
            ensure_same_shape(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_to_uint8_roundtrip(self):
        image = np.linspace(0, 1, 12).reshape(4, 3)
        assert to_uint8(image).max() == 255
        assert to_uint8(image).min() == 0

    def test_rgb_to_gray_weights(self):
        pure_green = blank_rgb(2, 2, (0.0, 1.0, 0.0))
        gray = rgb_to_gray(pure_green)
        assert np.allclose(gray, 0.587)

    def test_blank_rgb_fill(self):
        image = blank_rgb(3, 4, (0.25, 0.5, 0.75))
        assert image.shape == (3, 4, 3)
        assert np.allclose(image[1, 2], (0.25, 0.5, 0.75))

    def test_blank_mask_empty(self):
        mask = blank_mask(5, 6)
        assert mask.shape == (5, 6)
        assert not mask.any()

    def test_blank_rejects_nonpositive(self):
        with pytest.raises(ImageError):
            blank_rgb(0, 5)
        with pytest.raises(ImageError):
            blank_mask(5, 0)
