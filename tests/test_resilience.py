"""The crash-safe lifecycle: checkpoints, watchdog, breaker, drain.

Covers the :mod:`repro.resilience` primitives plus their wiring into
the job subsystem and the service:

* stage checkpoints round-trip and resume byte-identically (modulo the
  wall-clock trace);
* the store restores restart survivors as resumable instead of failing
  them, keeping the no-spool ``Interrupted`` fallback;
* the watchdog reaps wedged jobs without leaking pool slots, and loses
  races against normal completion cleanly (``finish`` is a no-op on
  terminal jobs — no state flips, ever);
* the circuit breaker walks closed → open → half-open → closed;
* drain refuses new work over HTTP while in-flight jobs finish;
* the client honours ``Retry-After`` with capped, jittered backoff on
  idempotent requests only.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.client import RetryPolicy, ServiceClient, ServiceError
from repro.config import config_hash, config_to_dict, resolve_config
from repro.errors import CircuitOpen, ReproError
from repro.jobs import JobManager, JobsConfig, JobState, JobStore
from repro.jobs.stream import FrameQueue, StreamIdleTimeout
from repro.jobs.worker import JobWorkerPool
from repro.perf.pool import WorkerPool
from repro.pipeline import JumpAnalyzer
from repro.resilience import (
    CHECKPOINT_STAGES,
    CircuitBreaker,
    JobCheckpointer,
    ServiceLifecycle,
    Watchdog,
    has_spool,
    spool_input,
)
from repro.serialization import analysis_payload, annotation_to_dict
from repro.model.annotation import simulate_human_annotation


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class _SimulatedKill(BaseException):
    """BaseException so it tunnels through recovery like a real kill."""


class KillAfter:
    """Checkpointer wrapper raising :class:`_SimulatedKill` after a stage."""

    def __init__(self, inner: JobCheckpointer, stage: str) -> None:
        self._inner = inner
        self._stage = stage

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __call__(self, stage, value, context) -> None:
        self._inner(stage, value, context)
        if stage == self._stage:
            raise _SimulatedKill(stage)


@pytest.fixture(scope="module")
def fast_config():
    return resolve_config(preset="fast")


@pytest.fixture(scope="module")
def fast_setup(fast_config):
    """Analyzer + annotated synthetic jump + reference payload."""
    from repro.video.synthesis import SyntheticJumpConfig, synthesize_jump

    jump = synthesize_jump(SyntheticJumpConfig(seed=5))
    annotation = simulate_human_annotation(
        jump.motion.poses[0],
        jump.dims,
        mask=jump.person_masks[0],
        rng=np.random.default_rng(5),
    )
    analyzer = JumpAnalyzer(fast_config)
    reference = analysis_payload(
        analyzer.analyze(
            jump.video, annotation=annotation, rng=np.random.default_rng(5)
        )
    )
    reference.pop("trace", None)
    return {
        "analyzer": analyzer,
        "video": jump.video,
        "annotation": annotation,
        "reference": reference,
        "hash": config_hash(config_to_dict(analyzer.config)),
    }


# ----------------------------------------------------------------------
# Checkpoints + resume
# ----------------------------------------------------------------------
class TestJobCheckpointer:
    def test_checkpoint_stages_are_the_expensive_prefix(self):
        assert CHECKPOINT_STAGES == ("segmentation", "annotation", "tracking")

    def test_round_trip_restores_last_stage(self, tmp_path, fast_setup):
        ckpt = JobCheckpointer(tmp_path, "job-1", fast_setup["hash"])
        fast_setup["analyzer"].analyze(
            fast_setup["video"],
            annotation=fast_setup["annotation"],
            rng=np.random.default_rng(5),
            checkpointer=ckpt,
        )
        assert ckpt.writes == len(CHECKPOINT_STAGES)
        saved = ckpt.load()
        assert saved is not None
        assert saved.stage == "tracking"
        assert saved.config_hash == fast_setup["hash"]
        assert "tracking" in saved.artifacts
        ckpt.clear()
        assert ckpt.load() is None

    def test_config_hash_mismatch_forces_clean_rerun(
        self, tmp_path, fast_setup
    ):
        ckpt = JobCheckpointer(tmp_path, "job-2", fast_setup["hash"])
        fast_setup["analyzer"].analyze(
            fast_setup["video"],
            annotation=fast_setup["annotation"],
            rng=np.random.default_rng(5),
            checkpointer=ckpt,
        )
        other = JobCheckpointer(tmp_path, "job-2", "different-hash")
        assert other.load() is None

    def test_torn_checkpoint_is_ignored(self, tmp_path, fast_setup):
        ckpt = JobCheckpointer(tmp_path, "job-3", fast_setup["hash"])
        fast_setup["analyzer"].analyze(
            fast_setup["video"],
            annotation=fast_setup["annotation"],
            rng=np.random.default_rng(5),
            checkpointer=ckpt,
        )
        # A crash between the npz and the JSON commit marker leaves
        # arrays without meta (or vice versa); both read as "none".
        (ckpt.directory / "checkpoint.npz").unlink()
        assert ckpt.load() is None

    @pytest.mark.parametrize("kill_after", ["segmentation", "tracking"])
    def test_resume_matches_uninterrupted_run(
        self, tmp_path, fast_setup, kill_after
    ):
        """A job killed after stage k resumes to an identical payload."""
        ckpt = JobCheckpointer(tmp_path, "job-4", fast_setup["hash"])
        with pytest.raises(_SimulatedKill):
            fast_setup["analyzer"].analyze(
                fast_setup["video"],
                annotation=fast_setup["annotation"],
                rng=np.random.default_rng(5),
                checkpointer=KillAfter(ckpt, kill_after),
            )
        assert ckpt.load() is not None
        resumed = analysis_payload(
            fast_setup["analyzer"].analyze(
                fast_setup["video"],
                annotation=fast_setup["annotation"],
                rng=np.random.default_rng(5),
                checkpointer=ckpt,
            )
        )
        resumed.pop("trace", None)
        assert resumed == fast_setup["reference"]


class TestSpool:
    def test_spool_presence_is_the_resume_predicate(self, tmp_path):
        assert not has_spool(tmp_path, "job-9")
        spool_input(tmp_path, "job-9", mode="batch", seed=3, config=None,
                    annotation=None, frames=np.zeros((2, 4, 4, 3)))
        assert has_spool(tmp_path, "job-9")


# ----------------------------------------------------------------------
# Store restore semantics
# ----------------------------------------------------------------------
class TestStoreResume:
    def _crashed_store(self, tmp_path):
        persist = tmp_path / "jobs.json"
        store = JobStore(persist_path=str(persist))
        payload = store.create("d" * 10, seed=1, config_hash="h")
        store.mark_running(payload["id"])
        return persist, payload["id"]

    def test_resumable_job_requeues_as_submitted(self, tmp_path):
        persist, job_id = self._crashed_store(tmp_path)
        store = JobStore(
            persist_path=str(persist), resumable=lambda _job_id: True
        )
        payload = store.payload(job_id)
        assert payload["state"] == JobState.SUBMITTED
        assert payload["resumed"] is True
        assert store.resumed_count == 1
        assert [p["id"] for p in store.queued_jobs()] == [job_id]

    def test_without_spool_falls_back_to_interrupted(self, tmp_path):
        persist, job_id = self._crashed_store(tmp_path)
        store = JobStore(persist_path=str(persist))
        payload = store.payload(job_id)
        assert payload["state"] == JobState.FAILED
        assert payload["error"]["type"] == "Interrupted"

    def test_finish_is_a_noop_on_terminal_jobs(self, tmp_path):
        store = JobStore()
        payload = store.create("d" * 10)
        job_id = payload["id"]
        store.mark_running(job_id)
        assert store.finish(job_id, JobState.SUCCEEDED, result={"ok": 1})
        # The losing side of any race (watchdog, idle timeout, late
        # error) must not flip a finished job.
        assert not store.finish(
            job_id, JobState.FAILED, error={"type": "WatchdogTimeout"}
        )
        assert store.payload(job_id)["state"] == JobState.SUCCEEDED


# ----------------------------------------------------------------------
# Watchdog
# ----------------------------------------------------------------------
class WedgedAnalyzer:
    STAGES = ("segmentation",)

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()

    def analyze(self, video, annotation=None, rng=None,
                instrumentation=None, cancel_token=None):
        self.entered.set()
        self.release.wait(10)
        raise ReproError("released")


class TestWatchdog:
    def test_reap_fails_job_and_reclaims_slot(self):
        clock = FakeClock()
        store = JobStore(clock=clock)
        pool = WorkerPool(1, thread_name_prefix="wd-test")
        workers = JobWorkerPool(pool, store, serializer=lambda a: {"ok": 1})
        wedged = WedgedAnalyzer()
        payload = store.create("d" * 10)
        job_id = payload["id"]
        workers.submit(job_id, wedged, video=object())
        assert wedged.entered.wait(5)

        # Under the deadline: nothing reaped.
        clock.advance(1.0)
        assert workers.reap_overdue(5.0) == []

        clock.advance(10.0)
        assert workers.reap_overdue(5.0) == [job_id]
        final = store.payload(job_id)
        assert final["state"] == JobState.FAILED
        assert final["error"]["type"] == "WatchdogTimeout"
        assert pool.stats()["reclaimed"] == 1
        assert workers.watchdog_timeouts == 1
        # Idempotent: the zombie is only reaped once.
        assert workers.reap_overdue(5.0) == []

        # The reclaimed slot actually runs new work.
        done = threading.Event()
        pool.submit(done.set)
        assert done.wait(5)

        # Zombie exit returns the extra slot: zero leaks.
        wedged.release.set()
        deadline = threading.Event()
        for _ in range(100):
            if pool.stats()["reclaimed"] == 0 and workers.active() == 0:
                break
            deadline.wait(0.05)
        assert pool.stats()["reclaimed"] == 0
        assert workers.active() == 0
        pool.shutdown(wait=True)

    def test_watchdog_thread_lifecycle(self):
        class CountingWorker:
            def __init__(self):
                self.calls = 0

            def reap_overdue(self, deadline):
                self.calls += 1
                return []

        worker = CountingWorker()
        dog = Watchdog(worker, deadline_seconds=1.0, interval_seconds=0.01)
        assert dog.enabled
        dog.start()
        for _ in range(100):
            if worker.calls:
                break
            threading.Event().wait(0.01)
        dog.stop()
        assert worker.calls >= 1
        assert not Watchdog(worker, deadline_seconds=0.0).enabled


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_walks_closed_open_half_open_closed(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            threshold=2, cooldown_seconds=10.0, clock=clock
        )
        breaker.check("cfg")  # closed: no-op
        breaker.record_failure("cfg")
        breaker.check("cfg")  # one failure: still closed
        breaker.record_failure("cfg")
        with pytest.raises(CircuitOpen) as exc_info:
            breaker.check("cfg")
        assert 0 < exc_info.value.retry_after <= 10.0
        assert breaker.snapshot()["trips"] == 1

        clock.advance(11.0)
        breaker.check("cfg")  # half-open: exactly one probe admitted
        with pytest.raises(CircuitOpen):
            breaker.check("cfg")  # concurrent second caller still refused
        breaker.record_success("cfg")
        breaker.check("cfg")  # closed again
        assert breaker.snapshot()["open"] == []

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            threshold=1, cooldown_seconds=5.0, clock=clock
        )
        breaker.record_failure("cfg")
        clock.advance(6.0)
        breaker.check("cfg")  # probe
        breaker.record_failure("cfg")  # probe failed: reopen
        with pytest.raises(CircuitOpen):
            breaker.check("cfg")
        assert breaker.snapshot()["trips"] == 2

    def test_disabled_breaker_never_trips(self):
        breaker = CircuitBreaker(threshold=0)
        for _ in range(50):
            breaker.record_failure("cfg")
        breaker.check("cfg")
        assert breaker.snapshot()["enabled"] is False

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(threshold=1, cooldown_seconds=5.0)
        breaker.record_failure("bad-config")
        with pytest.raises(CircuitOpen):
            breaker.check("bad-config")
        breaker.check("good-config")  # untouched key stays closed


# ----------------------------------------------------------------------
# Idle-timeout vs eof race
# ----------------------------------------------------------------------
class CueTimeoutQueue(FrameQueue):
    """``get`` blocks on a cue, then raises the idle timeout — modelling
    a timeout that fires in the same instant ``eof`` lands."""

    def __init__(self, cue: threading.Event) -> None:
        super().__init__(8)
        self._cue = cue

    def get(self, timeout=None):
        self._cue.wait(10)
        raise StreamIdleTimeout("idle past the deadline")


class StubStream:
    def push_frame(self, frame):
        from types import SimpleNamespace

        return SimpleNamespace(
            frames_seen=1, phase=None, pose_box=None, provisional=None
        )

    def finish(self):
        return {"ok": True}


class StubStreamAnalyzer:
    STAGES = ("segmentation",)

    def open_stream(self, annotation=None, rng=None, instrumentation=None,
                    cancel_token=None):
        return StubStream()


class TestIdleTimeoutEofRace:
    def test_timeout_firing_at_eof_yields_one_terminal_state(self):
        """Timeout wins the photo finish: exactly one terminal state,
        the queue is closed, no slot leaks, and a late ``eof`` is a
        clean structured refusal."""
        store = JobStore()
        pool = WorkerPool(1, thread_name_prefix="race-test")
        workers = JobWorkerPool(pool, store, serializer=lambda a: dict(a))
        cue = threading.Event()
        queue = CueTimeoutQueue(cue)
        payload = store.create("d" * 10, mode="stream")
        job_id = payload["id"]
        workers.submit_stream(job_id, StubStreamAnalyzer(), queue)

        # eof lands... and the idle timer fires in the same instant.
        store.mark_eof(job_id)
        queue.close()
        cue.set()

        for _ in range(200):
            if (store.payload(job_id) or {})["state"] in JobState.TERMINAL:
                break
            threading.Event().wait(0.01)
        final = store.payload(job_id)
        assert final["state"] == JobState.FAILED
        assert final["error"]["type"] == "StreamIdleTimeout"
        # Exactly one terminal transition: a second resolution attempt
        # (either side of the race re-firing) is a no-op.
        assert not store.finish(job_id, JobState.SUCCEEDED, result={})
        assert store.payload(job_id)["state"] == JobState.FAILED
        for _ in range(200):
            if workers.active() == 0:
                break
            threading.Event().wait(0.01)
        assert workers.active() == 0
        assert pool.stats()["reclaimed"] == 0
        assert queue.closed
        pool.shutdown(wait=True)

    def test_finish_beating_timeout_is_never_flipped(self):
        """Opposite interleaving: the stream finishes first; the late
        idle-timeout (or watchdog) loses and cannot flip the state."""
        store = JobStore()
        pool = WorkerPool(1, thread_name_prefix="race-test2")
        workers = JobWorkerPool(pool, store, serializer=lambda a: dict(a))
        queue = FrameQueue(8)
        payload = store.create("d" * 10, mode="stream")
        job_id = payload["id"]
        workers.submit_stream(job_id, StubStreamAnalyzer(), queue)
        store.mark_eof(job_id)
        queue.close()
        for _ in range(200):
            if (store.payload(job_id) or {})["state"] in JobState.TERMINAL:
                break
            threading.Event().wait(0.01)
        assert store.payload(job_id)["state"] == JobState.SUCCEEDED
        # The late timeout path resolves to a no-op, not a flip.
        assert not store.finish(
            job_id,
            JobState.FAILED,
            error={"type": "StreamIdleTimeout", "message": "late"},
        )
        assert store.payload(job_id)["state"] == JobState.SUCCEEDED
        assert pool.stats()["reclaimed"] == 0
        pool.shutdown(wait=True)


# ----------------------------------------------------------------------
# Manager recovery (end to end, fast preset)
# ----------------------------------------------------------------------
class TestManagerRecovery:
    def test_killed_batch_job_resumes_through_the_manager(
        self, tmp_path, fast_setup, fast_config
    ):
        persist = str(tmp_path / "jobs.json")
        checkpoints = str(tmp_path / "checkpoints")

        # Phase 1: the doomed process's leftovers.
        store = JobStore(persist_path=persist)
        payload = store.create("d" * 10, seed=5, config_hash=fast_setup["hash"])
        job_id = payload["id"]
        store.mark_running(job_id)
        spool_input(
            checkpoints,
            job_id,
            mode="batch",
            seed=5,
            config=config_to_dict(fast_setup["analyzer"].config),
            annotation=annotation_to_dict(fast_setup["annotation"]),
            frames=fast_setup["video"].frames,
        )
        ckpt = JobCheckpointer(checkpoints, job_id, fast_setup["hash"])
        with pytest.raises(_SimulatedKill):
            fast_setup["analyzer"].analyze(
                fast_setup["video"],
                annotation=fast_setup["annotation"],
                rng=np.random.default_rng(5),
                checkpointer=KillAfter(ckpt, "segmentation"),
            )

        # Phase 2: restart.
        pool = WorkerPool(2, thread_name_prefix="recover-test")
        manager = JobManager(
            JobsConfig(persist_path=persist, checkpoint_dir=checkpoints),
            pool,
        )
        try:
            assert manager.recover(
                lambda _cfg: JumpAnalyzer(fast_config)
            ) == [job_id]
            for _ in range(600):
                state = manager.payload(job_id)["state"]
                if state in JobState.TERMINAL:
                    break
                threading.Event().wait(0.05)
            final = manager.payload(job_id, include_result=True)
            assert final["state"] == JobState.SUCCEEDED
            assert final["resumed"] is True
            result = dict(final["result"])
            result.pop("trace", None)
            assert result == fast_setup["reference"]
            assert manager.stats()["resumed"] == 1
            # Terminal cleanup dropped the crash state.  The worker
            # flips the state *before* its finally-block cleanup runs,
            # so give the sweep a moment on a loaded machine.
            for _ in range(100):
                if not has_spool(checkpoints, job_id):
                    break
                threading.Event().wait(0.05)
            assert not has_spool(checkpoints, job_id)
        finally:
            manager.close()
            pool.shutdown(wait=True)


# ----------------------------------------------------------------------
# Drain + lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_uptime_and_drain_flag(self):
        clock = FakeClock()
        lifecycle = ServiceLifecycle(clock=clock)
        clock.advance(12.5)
        assert lifecycle.uptime_seconds() == pytest.approx(12.5)
        assert not lifecycle.draining
        lifecycle.begin_drain()
        assert lifecycle.draining

    def test_wait_drained_polls_until_idle_or_deadline(self):
        lifecycle = ServiceLifecycle()
        calls = {"n": 0}

        def idle_after_three() -> bool:
            calls["n"] += 1
            return calls["n"] >= 3

        assert lifecycle.wait_drained(idle_after_three, timeout=5.0,
                                      poll_seconds=0.01)
        assert not lifecycle.wait_drained(lambda: False, timeout=0.05,
                                          poll_seconds=0.01)


class TestServiceDrain:
    def test_draining_service_refuses_new_work_over_http(self):
        from repro.service import ServiceHandle

        with ServiceHandle() as handle:
            assert handle.drain(timeout=5.0)
            health = json.loads(
                urllib.request.urlopen(
                    f"{handle.address}/v1/health", timeout=5
                ).read()
            )
            assert health["status"] == "shutting_down"
            assert health["shutting_down"] is True
            assert health["uptime_seconds"] >= 0.0
            request = urllib.request.Request(
                f"{handle.address}/v1/jobs",
                data=json.dumps({"mode": "stream"}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(request, timeout=5)
            assert exc_info.value.code == 503
            assert exc_info.value.headers.get("Retry-After")
            envelope = json.loads(exc_info.value.read())
            assert envelope["error"]["type"] == "draining"


# ----------------------------------------------------------------------
# Client backoff
# ----------------------------------------------------------------------
class TestClientRetry:
    def _client(self, **policy_kwargs) -> tuple[ServiceClient, list]:
        client = ServiceClient(
            "http://unit.test",
            retry_policy=RetryPolicy(
                base_delay_seconds=0.01, **policy_kwargs
            ),
        )
        sleeps: list[float] = []
        client._sleep = sleeps.append
        return client, sleeps

    def test_idempotent_503_retries_honouring_retry_after(self):
        client, sleeps = self._client(max_retries=3)
        calls = {"n": 0}

        def flaky(method, path, body=None, timeout=None):
            calls["n"] += 1
            if calls["n"] < 3:
                raise ServiceError(503, "overloaded", "busy",
                                   retry_after=2.5)
            return {"ok": True}

        client._request_once = flaky
        assert client._request("GET", "/health") == {"ok": True}
        assert sleeps == [2.5, 2.5]

    def test_retries_are_capped_then_raise(self):
        client, sleeps = self._client(max_retries=2)

        def always_busy(method, path, body=None, timeout=None):
            raise ServiceError(429, "frame_queue_full", "full",
                               retry_after=0.5)

        client._request_once = always_busy
        with pytest.raises(ServiceError):
            client._request("GET", "/jobs/x")
        assert len(sleeps) == 2

    def test_submit_is_single_shot(self):
        client, sleeps = self._client(max_retries=5)
        calls = {"n": 0}

        def busy(method, path, body=None, timeout=None):
            calls["n"] += 1
            raise ServiceError(503, "draining", "shutting down")

        client._request_once = busy
        with pytest.raises(ServiceError):
            client._request("POST", "/jobs", {"mode": "stream"})
        assert calls["n"] == 1 and sleeps == []

    def test_non_retryable_statuses_raise_immediately(self):
        client, sleeps = self._client(max_retries=5)

        def bad_request(method, path, body=None, timeout=None):
            raise ServiceError(400, "bad_seed", "nope")

        client._request_once = bad_request
        with pytest.raises(ServiceError):
            client._request("GET", "/health")
        assert sleeps == []

    def test_backoff_doubles_capped_with_jitter(self):
        policy = RetryPolicy(
            max_retries=8, base_delay_seconds=0.1, max_delay_seconds=1.0
        )
        for attempt, nominal in [(0, 0.1), (1, 0.2), (2, 0.4), (6, 1.0)]:
            delay = policy.delay_seconds(attempt)
            assert nominal * 0.5 <= delay <= nominal
        # Retry-After wins, capped at the policy ceiling.
        assert policy.delay_seconds(0, retry_after=0.3) == 0.3
        assert policy.delay_seconds(0, retry_after=99.0) == 1.0
