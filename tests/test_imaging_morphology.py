"""Tests for binary morphology."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.morphology import (
    boundary,
    box_element,
    closing,
    cross_element,
    dilate,
    disk_element,
    erode,
    opening,
)


class TestElements:
    def test_box(self):
        assert box_element(3).sum() == 9

    def test_cross(self):
        element = cross_element(3)
        assert element.sum() == 5
        assert element[1, 1]

    def test_disk(self):
        disk = disk_element(2)
        assert disk.shape == (5, 5)
        assert disk[2, 2] and disk[0, 2]
        assert not disk[0, 0]

    def test_even_size_rejected(self):
        with pytest.raises(ImageError):
            box_element(4)
        with pytest.raises(ImageError):
            cross_element(2)
        with pytest.raises(ImageError):
            disk_element(-1)


class TestDilateErode:
    def test_dilate_grows_point(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[2, 2] = True
        out = dilate(mask)
        assert out.sum() == 9

    def test_erode_shrinks_block(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[1:4, 1:4] = True
        out = erode(mask)
        assert out.sum() == 1 and out[2, 2]

    def test_erode_at_border(self):
        mask = np.ones((4, 4), dtype=bool)
        out = erode(mask)
        # outside counts as background, so the border erodes away
        assert out.sum() == 4
        assert out[1:3, 1:3].all()

    def test_iterations(self):
        mask = np.zeros((9, 9), dtype=bool)
        mask[4, 4] = True
        assert dilate(mask, iterations=2).sum() == 25

    def test_duality_on_interior(self):
        rng = np.random.default_rng(3)
        mask = rng.random((12, 12)) > 0.5
        mask[0, :] = mask[-1, :] = mask[:, 0] = mask[:, -1] = False
        # dilation of mask == complement of erosion of complement
        # (holds away from the border given the padding convention)
        left = dilate(mask)[1:-1, 1:-1]
        right = ~erode(~mask)[1:-1, 1:-1]
        assert (left == right).all()


class TestOpenClose:
    def test_opening_removes_speck(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[1:5, 1:5] = True
        mask[6, 6] = True  # speck
        out = opening(mask)
        assert not out[6, 6]
        assert out[2, 2]

    def test_closing_fills_gap(self):
        mask = np.ones((5, 5), dtype=bool)
        mask[2, 2] = False
        assert closing(mask)[2, 2]

    def test_opening_is_anti_extensive(self):
        rng = np.random.default_rng(5)
        mask = rng.random((15, 15)) > 0.4
        assert not (opening(mask) & ~mask).any()

    def test_closing_is_extensive(self):
        rng = np.random.default_rng(6)
        mask = rng.random((15, 15)) > 0.4
        assert not (mask & ~closing(mask)).any()


class TestBoundary:
    def test_block_boundary(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[1:5, 1:5] = True
        edge = boundary(mask)
        assert edge[1, 1] and edge[1, 4]
        assert not edge[2, 2]

    def test_boundary_subset_of_mask(self):
        rng = np.random.default_rng(7)
        mask = rng.random((10, 10)) > 0.5
        assert not (boundary(mask) & ~mask).any()
