"""Tests for temporal and random population seeding."""

import numpy as np
import pytest

from repro.errors import TrackingError
from repro.ga.population import (
    random_population,
    silhouette_centroid,
    temporal_population,
)
from repro.model.containment import ContainmentChecker
from repro.model.geometry import angle_difference
from repro.model.pose import GENES, StickPose
from repro.model.sticks import AngleWindows, default_body
from repro.video.synthesis.render import person_mask_for_pose

BODY = default_body(60.0)


def _setup():
    pose = StickPose.standing(60.0, 50.0)
    mask = person_mask_for_pose(pose, BODY, (120, 160))
    return pose, mask


class TestCentroid:
    def test_centroid_near_body_center(self):
        pose, mask = _setup()
        cx, cy = silhouette_centroid(mask)
        assert abs(cx - pose.x0) < 4.0
        assert abs(cy - pose.y0) < 10.0

    def test_empty_mask_rejected(self):
        with pytest.raises(TrackingError):
            silhouette_centroid(np.zeros((5, 5), dtype=bool))


class TestTemporalPopulation:
    def test_shape_and_window_bounds(self, rng):
        pose, mask = _setup()
        windows = AngleWindows()
        population = temporal_population(
            pose, mask, windows, 40, rng=rng, include_previous=False
        )
        assert population.shape == (40, GENES)
        cx, cy = silhouette_centroid(mask)
        assert (np.abs(population[:, 0] - cx) <= windows.center_delta + 1e-9).all()
        assert (np.abs(population[:, 1] - cy) <= windows.center_delta + 1e-9).all()
        for stick in range(8):
            deltas = angle_difference(
                population[:, 2 + stick], pose.angles_deg[stick]
            )
            assert (np.abs(deltas) <= windows.deltas_deg[stick] + 1e-9).all()

    def test_includes_previous_pose(self, rng):
        pose, mask = _setup()
        population = temporal_population(
            pose, mask, AngleWindows(), 30, rng=rng, include_previous=True
        )
        assert np.allclose(population[0], pose.to_genes())

    def test_extra_seeds_prepended(self, rng):
        pose, mask = _setup()
        other = pose.translated(1.0, 0.0)
        population = temporal_population(
            pose, mask, AngleWindows(), 30, rng=rng,
            include_previous=True, extra_seeds=[other],
        )
        assert np.allclose(population[1], other.to_genes())

    def test_containment_filtering(self, rng):
        pose, mask = _setup()
        checker = ContainmentChecker(mask, BODY, margin=2)
        population = temporal_population(
            pose, mask, AngleWindows(), 25, checker=checker, rng=rng
        )
        validity = checker.check(population)
        # the bulk of the population must be feasible (best-effort fill
        # may append a few infeasible ones when sampling is hard)
        assert validity.mean() > 0.8

    def test_reseed_fraction_spreads_angles(self, rng):
        pose, mask = _setup()
        population = temporal_population(
            pose, mask, AngleWindows(), 60, rng=rng,
            include_previous=False, reseed_fraction=1.0,
        )
        # with full reseeding, some angle must leave every window
        deltas = np.abs(angle_difference(population[:, 2:], np.asarray(pose.angles_deg)))
        assert deltas.max() > 90.0

    def test_reseed_validation(self, rng):
        pose, mask = _setup()
        with pytest.raises(TrackingError):
            temporal_population(
                pose, mask, AngleWindows(), 10, rng=rng, reseed_fraction=1.5
            )


class TestRandomPopulation:
    def test_shape_and_spread(self, rng):
        _, mask = _setup()
        population = random_population(mask, 100, rng=rng)
        assert population.shape == (100, GENES)
        # angles cover a wide range
        assert population[:, 2:].std() > 60.0

    def test_centers_near_centroid(self, rng):
        _, mask = _setup()
        population = random_population(mask, 50, rng=rng, center_delta=5.0)
        cx, cy = silhouette_centroid(mask)
        assert (np.abs(population[:, 0] - cx) <= 5.0).all()
        assert (np.abs(population[:, 1] - cy) <= 5.0).all()
