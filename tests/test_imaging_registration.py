"""Tests for translation estimation and video stabilisation."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.registration import (
    estimate_translation,
    shift_image,
    stabilize_frames,
)


def _textured(rng, shape=(48, 64)):
    from repro.imaging.filters import gaussian_blur

    return gaussian_blur(rng.random(shape), 1.0)


class TestShiftImage:
    def test_positive_shift(self):
        image = np.arange(12.0).reshape(3, 4)
        out = shift_image(image, 1, 1)
        assert out[1, 1] == image[0, 0]
        assert out.shape == image.shape

    def test_negative_shift(self):
        image = np.arange(12.0).reshape(3, 4)
        out = shift_image(image, -1, -2)
        assert out[0, 0] == image[1, 2]

    def test_zero_shift_copy(self):
        image = np.ones((3, 3))
        out = shift_image(image, 0, 0)
        assert out is not image and np.array_equal(out, image)

    def test_color_and_bool(self):
        rgb = np.random.default_rng(0).random((4, 4, 3))
        assert shift_image(rgb, 1, 0).shape == rgb.shape
        mask = np.eye(4, dtype=bool)
        assert shift_image(mask, 0, 1).dtype == bool

    def test_inverse_roundtrip_interior(self):
        image = np.arange(100.0).reshape(10, 10)
        back = shift_image(shift_image(image, 2, -1), -2, 1)
        assert np.array_equal(back[3:-3, 3:-3], image[3:-3, 3:-3])


class TestEstimateTranslation:
    @pytest.mark.parametrize("method", ["search", "phase"])
    def test_recovers_known_shift(self, rng, method):
        ref = _textured(rng)
        moved = shift_image(ref, 3, -2)
        drow, dcol = estimate_translation(ref, moved, max_shift=5, method=method)
        assert (drow, dcol) == (-3, 2)
        realigned = shift_image(moved, drow, dcol)
        assert np.allclose(realigned[6:-6, 6:-6], ref[6:-6, 6:-6])

    def test_zero_shift(self, rng):
        ref = _textured(rng)
        assert estimate_translation(ref, ref.copy()) == (0, 0)

    def test_rgb_input(self, rng):
        ref = rng.random((32, 40, 3))
        moved = shift_image(ref, 0, 2)
        assert estimate_translation(ref, moved, max_shift=4) == (0, -2)

    def test_robust_to_local_change(self, rng):
        # A small moving object must not derail the global estimate.
        ref = _textured(rng)
        moved = shift_image(ref, 2, 1)
        moved[10:16, 10:16] = 1.0  # the "person" moved independently
        assert estimate_translation(ref, moved, max_shift=4) == (-2, -1)

    def test_validation(self, rng):
        ref = _textured(rng)
        with pytest.raises(ImageError):
            estimate_translation(ref, ref[:10])
        with pytest.raises(ImageError):
            estimate_translation(ref, ref, method="optical-flow")
        with pytest.raises(ImageError):
            estimate_translation(ref, ref, max_shift=40)  # too large


class TestStabilizeFrames:
    def test_aligns_shaken_stack(self, rng):
        base = _textured(rng, (40, 50))
        base_rgb = np.stack([base] * 3, axis=-1)
        shifts = [(0, 0), (2, -1), (-1, 2), (3, 3)]
        frames = np.stack([shift_image(base_rgb, *s) for s in shifts])
        aligned, offsets = stabilize_frames(frames, max_shift=5)
        assert offsets[0] == (0, 0)
        for k in range(1, 4):
            assert offsets[k] == (-shifts[k][0], -shifts[k][1])
            assert np.allclose(
                aligned[k][8:-8, 8:-8], frames[0][8:-8, 8:-8], atol=1e-9
            )

    def test_validation(self):
        with pytest.raises(ImageError):
            stabilize_frames(np.zeros((4, 4, 3)))
        with pytest.raises(ImageError):
            stabilize_frames(np.zeros((2, 20, 20, 3)), reference_index=5)


class TestJitteredJumpPipeline:
    def test_stabilization_restores_segmentation(self):
        from repro.imaging.metrics import iou
        from repro.segmentation import (
            SegmentationConfig,
            SegmentationPipeline,
        )
        from repro.video.synthesis import SyntheticJumpConfig, synthesize_jump

        jump = synthesize_jump(SyntheticJumpConfig(seed=1, camera_jitter=2.0))
        shaky = SegmentationPipeline().segment_video(jump.video)
        stable = SegmentationPipeline(
            SegmentationConfig(stabilize=True)
        ).segment_video(jump.video)
        def score(segs):
            return float(
                np.mean(
                    [
                        iou(seg.person, jump.person_masks[k])
                        for k, seg in enumerate(segs)
                    ]
                )
            )
        assert score(stable) > score(shaky) + 0.03
        assert score(stable) > 0.93
