"""Tests for pixel-to-metric calibration and distance grading."""

import pytest

from repro.errors import ScoringError
from repro.model.pose import StickPose
from repro.model.sticks import default_body
from repro.scoring.calibration import AGE_NORMS_CM, PixelCalibration, grade_distance
from repro.scoring.distance import measure_jump


class TestPixelCalibration:
    def test_scale_factor(self):
        calibration = PixelCalibration.from_stature(72.0, 120.0)
        assert calibration.centimeters_per_pixel == pytest.approx(120.0 / 72.0)
        assert calibration.to_centimeters(36.0) == pytest.approx(60.0)

    def test_jump_distance_cm(self):
        body = default_body(72.0)
        poses = [StickPose.standing(30.0, 50.0), StickPose.standing(102.0, 50.0)]
        measurement = measure_jump(poses, body)
        calibration = PixelCalibration.from_stature(body.stature, 120.0)
        expected = measurement.distance * 120.0 / body.stature
        assert calibration.jump_distance_cm(measurement) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ScoringError):
            PixelCalibration(0.0, 120.0)
        with pytest.raises(ScoringError):
            PixelCalibration(72.0, -1.0)


class TestGrading:
    def test_bands(self):
        low, mid, high = AGE_NORMS_CM[8]
        assert grade_distance(low - 1.0, 8) == "needs work"
        assert grade_distance((low + mid) / 2, 8) == "average"
        assert grade_distance((mid + high) / 2, 8) == "good"
        assert grade_distance(high + 1.0, 8) == "excellent"

    def test_norms_monotone_in_age(self):
        ages = sorted(AGE_NORMS_CM)
        for a, b in zip(ages, ages[1:]):
            assert AGE_NORMS_CM[a][1] < AGE_NORMS_CM[b][1]

    def test_unknown_age(self):
        with pytest.raises(ScoringError):
            grade_distance(100.0, 25)
