"""Tests for smoothing filters."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.filters import (
    box_blur,
    gaussian_blur,
    gaussian_kernel,
    median_filter,
)


class TestKernels:
    def test_gaussian_normalised(self):
        kernel = gaussian_kernel(1.5)
        assert kernel.sum() == pytest.approx(1.0)
        assert kernel.argmax() == kernel.size // 2

    def test_gaussian_symmetric(self):
        kernel = gaussian_kernel(2.0)
        assert np.allclose(kernel, kernel[::-1])

    def test_invalid_sigma(self):
        with pytest.raises(ImageError):
            gaussian_kernel(0.0)


class TestBlurs:
    def test_constant_image_unchanged(self):
        image = np.full((8, 8), 0.4)
        assert np.allclose(box_blur(image, 3), 0.4)
        assert np.allclose(gaussian_blur(image, 1.0), 0.4)

    def test_preserves_mean_roughly(self, rng):
        image = rng.random((32, 32))
        blurred = gaussian_blur(image, 1.0)
        assert blurred.mean() == pytest.approx(image.mean(), abs=0.01)

    def test_reduces_variance(self, rng):
        image = rng.random((32, 32))
        assert gaussian_blur(image, 2.0).std() < image.std()

    def test_works_on_color(self, rng):
        image = rng.random((10, 10, 3))
        out = box_blur(image, 3)
        assert out.shape == image.shape

    def test_even_size_rejected(self):
        with pytest.raises(ImageError):
            box_blur(np.zeros((4, 4)), 2)


class TestMedian:
    def test_removes_salt_noise(self):
        image = np.zeros((9, 9))
        image[4, 4] = 1.0
        out = median_filter(image, 3)
        assert out[4, 4] == 0.0

    def test_preserves_step_edge(self):
        image = np.zeros((8, 8))
        image[:, 4:] = 1.0
        out = median_filter(image, 3)
        assert np.allclose(out[:, :3], 0.0)
        assert np.allclose(out[:, 5:], 1.0)

    def test_rejects_color(self):
        with pytest.raises(ImageError):
            median_filter(np.zeros((4, 4, 3)), 3)
