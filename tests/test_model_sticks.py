"""Tests for stick topology and body dimensions (Fig. 4)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.sticks import (
    EVALUATION_ORDER,
    FOOT,
    HEAD,
    NECK,
    NUM_STICKS,
    PARENT,
    SHANK,
    STICK_NAMES,
    THIGH,
    TRUNK,
    UPPER_ARM,
    AngleWindows,
    BodyDimensions,
    default_body,
    stick_index,
)


class TestTopology:
    def test_eight_sticks(self):
        assert NUM_STICKS == 8
        assert len(STICK_NAMES) == 8

    def test_paper_attachments(self):
        # Fig. 4: neck and arm at the trunk's upper end, thigh at the
        # lower end, the rest chains distally.
        assert PARENT[NECK] == (TRUNK, "upper")
        assert PARENT[UPPER_ARM] == (TRUNK, "upper")
        assert PARENT[THIGH] == (TRUNK, "lower")
        assert PARENT[HEAD] == (NECK, "distal")
        assert PARENT[SHANK] == (THIGH, "distal")
        assert PARENT[FOOT] == (SHANK, "distal")

    def test_evaluation_order_parents_first(self):
        seen = set()
        for stick in EVALUATION_ORDER:
            if stick in PARENT:
                assert PARENT[stick][0] in seen
            seen.add(stick)

    def test_stick_index(self):
        assert stick_index("trunk") == TRUNK
        assert stick_index("foot") == FOOT
        with pytest.raises(ModelError):
            stick_index("tail")


class TestBodyDimensions:
    def test_default_body_stature(self):
        body = default_body(stature=72.0)
        assert body.stature == pytest.approx(72.0)

    def test_scaled(self):
        body = default_body(60.0)
        double = body.scaled(2.0)
        assert double.stature == pytest.approx(120.0)
        assert double.thicknesses[TRUNK] == pytest.approx(
            2.0 * body.thicknesses[TRUNK]
        )

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ModelError):
            default_body(60.0).scaled(0.0)

    def test_with_thicknesses(self):
        body = default_body(60.0)
        new = body.with_thicknesses(np.full(8, 3.0))
        assert new.thicknesses == tuple([3.0] * 8)
        assert new.lengths == body.lengths

    def test_validation(self):
        with pytest.raises(ModelError):
            BodyDimensions(lengths=(1.0,) * 7, thicknesses=(1.0,) * 8)
        with pytest.raises(ModelError):
            BodyDimensions(lengths=(0.0,) + (1.0,) * 7, thicknesses=(1.0,) * 8)
        with pytest.raises(ModelError):
            default_body(-5.0)

    def test_named_accessors(self):
        body = default_body(60.0)
        assert body.length_of("thigh") == body.lengths[THIGH]
        assert body.thickness_of("head") == body.thicknesses[HEAD]

    def test_limbs_thinner_than_trunk(self):
        body = default_body(60.0)
        assert body.thicknesses[SHANK] < body.thicknesses[TRUNK]
        assert body.thicknesses[FOOT] < body.thicknesses[THIGH]


class TestAngleWindows:
    def test_defaults_valid(self):
        windows = AngleWindows()
        assert len(windows.deltas_deg) == NUM_STICKS
        assert windows.center_delta > 0

    def test_arm_window_widest(self):
        # The arm swings fastest; its window must dominate the trunk's.
        windows = AngleWindows()
        assert windows.deltas_deg[UPPER_ARM] > windows.deltas_deg[TRUNK]

    def test_validation(self):
        with pytest.raises(ModelError):
            AngleWindows(deltas_deg=(10.0,) * 7)
        with pytest.raises(ModelError):
            AngleWindows(deltas_deg=(0.0,) + (10.0,) * 7)
        with pytest.raises(ModelError):
            AngleWindows(center_delta=0.0)
