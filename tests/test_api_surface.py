"""The public surface is frozen: ``repro.__all__`` + the route table.

The committed fixture ``tests/data/api_surface.json`` is the contract.
Growing the surface is fine — regenerate the fixture in the same
commit (``python -m tests.test_api_surface`` or ``python
tests/test_api_surface.py``); shrinking or renaming anything is a
breaking change this test is meant to make loud.
"""

from __future__ import annotations

import json
from pathlib import Path

import repro
from repro.service import route_table

FIXTURE = Path(__file__).parent / "data" / "api_surface.json"


def current_surface() -> dict:
    """The live surface in the fixture's shape."""
    return {
        "python_api": sorted(set(repro.__all__)),
        "routes": route_table(),
    }


def write_snapshot() -> None:
    """Regenerate the committed fixture from the live surface."""
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(current_surface(), indent=2) + "\n")


def test_fixture_exists():
    assert FIXTURE.exists(), (
        f"missing {FIXTURE}; regenerate with `python {__file__}`"
    )


def test_python_api_matches_snapshot():
    snapshot = json.loads(FIXTURE.read_text())
    live = current_surface()
    assert live["python_api"] == snapshot["python_api"], (
        "repro.__all__ drifted from tests/data/api_surface.json; if the "
        f"change is intentional, regenerate with `python {__file__}`"
    )


def test_route_table_matches_snapshot():
    snapshot = json.loads(FIXTURE.read_text())
    live = current_surface()
    assert live["routes"] == snapshot["routes"], (
        "the HTTP route table drifted from tests/data/api_surface.json; "
        f"if the change is intentional, regenerate with `python {__file__}`"
    )


def test_all_names_importable():
    missing = [name for name in repro.__all__ if not hasattr(repro, name)]
    assert not missing, f"__all__ names not importable: {missing}"


def test_routes_are_versioned():
    for entry in route_table():
        method, path = entry.split(" ", 1)
        assert path.startswith(f"/{repro.API_VERSION}/"), entry
        assert method in {"GET", "POST", "DELETE"}, entry


if __name__ == "__main__":
    write_snapshot()
    print(f"wrote {FIXTURE}")
