"""Tests for rendering poses into frames with exact ground truth."""

import numpy as np

from repro.model.pose import StickPose
from repro.model.sticks import default_body
from repro.video.synthesis.body import BodyAppearance
from repro.video.synthesis.noise import NoiseConfig
from repro.video.synthesis.render import (
    person_mask_for_pose,
    render_frame,
    render_poses,
)
from repro.video.synthesis.scene import Scene, SceneConfig
from repro.video.synthesis.shadow import ShadowConfig

BODY = default_body(60.0)
SCENE = Scene(SceneConfig())


class TestPersonMask:
    def test_mask_connected_and_sized(self):
        pose = StickPose.standing(60.0, 50.0)
        mask = person_mask_for_pose(pose, BODY, (120, 160))
        from repro.imaging.components import label_components

        _, count = label_components(mask)
        assert count == 1
        # Roughly body-sized: stature 60, mean width ~7
        assert 250 <= mask.sum() <= 1000

    def test_mask_moves_with_pose(self):
        a = person_mask_for_pose(StickPose.standing(40, 50), BODY, (120, 160))
        b = person_mask_for_pose(StickPose.standing(80, 50), BODY, (120, 160))
        assert not (a & b).any()


class TestRenderFrame:
    def test_returns_frame_and_truth(self):
        pose = StickPose.standing(60.0, 50.0)
        frame, person, shadow = render_frame(
            pose, BODY, SCENE, BodyAppearance(), ShadowConfig()
        )
        assert frame.shape == (120, 160, 3)
        assert person.any() and shadow.any()
        assert not (person & shadow).any()

    def test_person_pixels_differ_from_background(self):
        pose = StickPose.standing(60.0, 50.0)
        frame, person, _ = render_frame(
            pose, BODY, SCENE, BodyAppearance(), ShadowConfig()
        )
        diff = np.abs(frame - SCENE.background).max(axis=-1)
        assert diff[person].min() > 0.05

    def test_texture_varies_within_torso(self):
        pose = StickPose.standing(60.0, 50.0)
        appearance = BodyAppearance(texture_amplitude=0.15)
        frame, person, _ = render_frame(pose, BODY, SCENE, appearance, ShadowConfig())
        torso_rows = slice(55, 70)
        torso = frame[torso_rows, :, 0][person[torso_rows, :]]
        assert torso.std() > 0.01

    def test_no_texture_when_amplitude_zero(self):
        pose = StickPose.standing(60.0, 50.0)
        appearance = BodyAppearance(texture_amplitude=0.0)
        frame, person, _ = render_frame(pose, BODY, SCENE, appearance, ShadowConfig())
        reds = np.unique(frame[person][:, 0].round(6))
        assert reds.size <= 6  # one flat colour per body part


class TestRenderPoses:
    def test_sequence_output(self):
        poses = [StickPose.standing(40.0 + 5 * i, 50.0) for i in range(4)]
        rendered = render_poses(
            poses, BODY, SCENE, noise_config=NoiseConfig.none()
        )
        assert len(rendered.video) == 4
        assert len(rendered.person_masks) == 4
        assert len(rendered.shadow_masks) == 4

    def test_noise_reproducible_under_seed(self):
        poses = [StickPose.standing(50.0, 50.0)]
        a = render_poses(poses, BODY, SCENE, rng=np.random.default_rng(3))
        b = render_poses(poses, BODY, SCENE, rng=np.random.default_rng(3))
        assert np.array_equal(a.video.frames, b.video.frames)
