"""Tests for jump-distance measurement."""

import pytest

from repro.errors import ScoringError
from repro.model.pose import StickPose
from repro.model.sticks import default_body
from repro.scoring.distance import best_landing_frame, measure_jump

BODY = default_body(72.0)


class TestMeasureJump:
    def test_pure_translation(self):
        # Takeoff line is the start *toes*, landing point the *heel*:
        # translating the body by D measures D minus the foot length.
        from repro.model.sticks import FOOT

        start = StickPose.standing(30.0, 50.0)
        end = StickPose.standing(90.0, 50.0)
        measurement = measure_jump([start, end], BODY)
        expected = 60.0 - BODY.lengths[FOOT]
        assert measurement.distance == pytest.approx(expected)
        assert measurement.relative_to_stature == pytest.approx(
            expected / BODY.stature
        )

    def test_synthetic_jump_distance(self, jump):
        from repro.model.sticks import FOOT

        measurement = measure_jump(jump.motion.poses, jump.dims)
        params = jump.motion.params
        expected = (
            params.jump_distance + params.settle_advance
            - jump.dims.lengths[FOOT]
        )
        assert measurement.distance == pytest.approx(expected, abs=8.0)

    def test_landing_frame_argument(self):
        poses = [StickPose.standing(10.0 * k, 50.0) for k in range(5)]
        measurement = measure_jump(poses, BODY, landing_frame=2)
        assert measurement.landing_frame == 2
        assert measurement.distance < measure_jump(poses, BODY).distance

    def test_validation(self):
        pose = StickPose.standing(0, 0)
        with pytest.raises(ScoringError):
            measure_jump([pose], BODY)
        with pytest.raises(ScoringError):
            measure_jump([pose, pose], BODY, landing_frame=5)


class TestBestLandingFrame:
    def test_detects_return_to_ground(self, jump):
        frame = best_landing_frame(jump.motion.poses)
        # landing happens in the air/landing half of the clip
        assert jump.motion.takeoff_frame < frame <= jump.num_frames - 1
