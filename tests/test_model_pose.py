"""Tests for StickPose and forward kinematics."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.pose import (
    GENES,
    StickPose,
    describe_pose,
    forward_kinematics,
    mean_joint_error,
    pose_angle_errors,
)
from repro.model.sticks import (
    FOOT,
    HEAD,
    NECK,
    SHANK,
    THIGH,
    TRUNK,
    UPPER_ARM,
    default_body,
)

BODY = default_body(60.0)


class TestStickPose:
    def test_standing_pose_angles(self):
        pose = StickPose.standing(30.0, 40.0)
        assert pose.angle("trunk") == 0.0
        assert pose.angle("upper_arm") == 180.0
        assert pose.angle("foot") == 90.0

    def test_gene_roundtrip(self):
        pose = StickPose.standing(10.0, 20.0)
        back = StickPose.from_genes(pose.to_genes())
        assert back == pose

    def test_from_genes_wraps_angles(self):
        genes = np.zeros(GENES)
        genes[2] = 370.0
        pose = StickPose.from_genes(genes)
        assert pose.angles_deg[0] == pytest.approx(10.0)

    def test_wrong_gene_count(self):
        with pytest.raises(ModelError):
            StickPose.from_genes(np.zeros(9))

    def test_with_angle(self):
        pose = StickPose.standing(0.0, 0.0).with_angle(THIGH, 150.0)
        assert pose.angle(THIGH) == 150.0

    def test_translated(self):
        pose = StickPose.standing(1.0, 2.0).translated(3.0, 4.0)
        assert (pose.x0, pose.y0) == (4.0, 6.0)

    def test_blended_midpoint(self):
        a = StickPose.standing(0.0, 0.0)
        b = StickPose.standing(10.0, 0.0).with_angle(TRUNK, 40.0)
        mid = a.blended(b, 0.5)
        assert mid.x0 == pytest.approx(5.0)
        assert mid.angle(TRUNK) == pytest.approx(20.0)

    def test_blended_shortest_arc(self):
        a = StickPose.standing(0.0, 0.0).with_angle(TRUNK, 350.0)
        b = StickPose.standing(0.0, 0.0).with_angle(TRUNK, 10.0)
        mid = a.blended(b, 0.5)
        assert mid.angle(TRUNK) == pytest.approx(0.0)

    def test_describe(self):
        text = describe_pose(StickPose.standing(1.0, 2.0))
        assert "trunk=" in text and "foot=" in text


class TestForwardKinematics:
    def test_standing_geometry(self):
        pose = StickPose.standing(0.0, 0.0)
        segs = pose.segments(BODY)
        # trunk vertical: upper end above lower end
        assert segs[TRUNK, 1, 1] > segs[TRUNK, 0, 1]
        assert segs[TRUNK, 1, 0] == pytest.approx(0.0)
        # head top is the highest point
        assert segs[HEAD, 1, 1] == max(segs[:, :, 1].max(), segs[HEAD, 1, 1])
        # foot points forward (+x)
        assert segs[FOOT, 1, 0] > segs[FOOT, 0, 0]

    def test_chain_connectivity(self):
        pose = StickPose.standing(5.0, 7.0).with_angle(THIGH, 120.0)
        segs = pose.segments(BODY)
        assert np.allclose(segs[SHANK, 0], segs[THIGH, 1])
        assert np.allclose(segs[FOOT, 0], segs[SHANK, 1])
        assert np.allclose(segs[NECK, 0], segs[TRUNK, 1])
        assert np.allclose(segs[UPPER_ARM, 0], segs[TRUNK, 1])
        assert np.allclose(segs[HEAD, 0], segs[NECK, 1])

    def test_segment_lengths(self):
        pose = StickPose.standing(0.0, 0.0)
        segs = pose.segments(BODY)
        for stick in range(8):
            length = np.linalg.norm(segs[stick, 1] - segs[stick, 0])
            assert length == pytest.approx(BODY.lengths[stick])

    def test_stature_when_standing(self):
        pose = StickPose.standing(0.0, 0.0)
        segs = pose.segments(BODY)
        top = segs[HEAD, 1, 1]
        bottom = segs[SHANK, 1, 1]  # ankle
        assert top - bottom == pytest.approx(BODY.stature, rel=0.01)

    def test_batch_consistency(self, rng):
        genes = rng.uniform(0, 360, (5, GENES))
        genes[:, 0] = rng.uniform(-10, 10, 5)
        genes[:, 1] = rng.uniform(-10, 10, 5)
        batch = forward_kinematics(genes, BODY)
        for i in range(5):
            single = forward_kinematics(genes[i : i + 1], BODY)[0]
            assert np.allclose(batch[i], single)

    def test_translation_equivariance(self, rng):
        genes = rng.uniform(0, 360, (1, GENES))
        genes[0, :2] = (0.0, 0.0)
        base = forward_kinematics(genes, BODY)[0]
        genes[0, :2] = (7.0, -3.0)
        moved = forward_kinematics(genes, BODY)[0]
        assert np.allclose(moved, base + np.array([7.0, -3.0]))

    def test_input_validation(self):
        with pytest.raises(ModelError):
            forward_kinematics(np.zeros((2, 9)), BODY)


class TestErrors:
    def test_pose_angle_errors_shortest_arc(self):
        a = StickPose.standing(0, 0).with_angle(TRUNK, 358.0)
        b = StickPose.standing(0, 0).with_angle(TRUNK, 2.0)
        errs = pose_angle_errors(a, b)
        assert errs[TRUNK] == pytest.approx(4.0)

    def test_mean_joint_error_zero_for_identical(self):
        pose = StickPose.standing(3.0, 4.0)
        assert mean_joint_error(pose, pose, BODY) == 0.0

    def test_mean_joint_error_translation(self):
        a = StickPose.standing(0.0, 0.0)
        b = a.translated(3.0, 4.0)
        assert mean_joint_error(a, b, BODY) == pytest.approx(5.0)
