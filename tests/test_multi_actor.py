"""Multi-actor acceptance: parity, per-track scoring, MOT, wire shape.

Three contracts pinned here:

1. **Within-version parity** — the multi-actor refactor left the
   single-actor path untouched: config hash, score, events and poses of
   the canonical seed-0 jump are hardcoded and must not move.
2. **Two actors, two tracks** — the labelled 2-actor scene yields
   exactly two confirmed tracks, each scored within tolerance of that
   actor's single-actor run, with zero ID switches under
   :func:`evaluate_mot`.
3. **Wire shape** — ``analysis_to_dict`` (and therefore
   ``POST /v1/analyze`` and the job results) always carries a
   ``tracks`` array with one identical key shape in both modes.
"""

import json
import urllib.request
from dataclasses import replace

import numpy as np
import pytest

from repro.config import config_hash, config_to_dict
from repro.evaluation import evaluate_mot
from repro.ga.engine import GAConfig
from repro.ga.temporal import TrackerConfig
from repro.model.fitness import FitnessConfig
from repro.model.sticks import default_body
from repro.pipeline import (
    AnalyzerConfig,
    JumpAnalyzer,
    StreamingConfig,
    multi_actor_config,
)
from repro.serialization import analysis_to_dict
from repro.video.synthesis import MultiActorJumpConfig, synthesize_multi_jump
from repro.video.synthesis.motion import generate_jump_motion, good_style
from repro.video.synthesis.render import render_poses
from repro.video.synthesis.scene import Scene

#: Scores are rule fractions (n/7); the fast GA budget used in tests is
#: noisy enough to flip up to two rules between a lane render and the
#: full scene, so tolerance is 2.5 rules.
SCORE_TOLERANCE = 2.5 / 7


def fast_config(**overrides):
    return AnalyzerConfig(
        tracker=TrackerConfig(
            ga=GAConfig(population_size=30, max_generations=10, patience=5),
            fitness=FitnessConfig(max_points=500),
        ),
        **overrides,
    )


@pytest.fixture(scope="module")
def scene():
    return synthesize_multi_jump(MultiActorJumpConfig(seed=0, actors=2))


@pytest.fixture(scope="module")
def multi_analysis(scene):
    analyzer = JumpAnalyzer(multi_actor_config(fast_config(), actors=2))
    return analyzer.analyze(scene.video, rng=np.random.default_rng(1))


def solo_analysis(scene, index):
    """Analyze actor ``index`` rendered alone in the same scene."""
    config = scene.config
    dims = default_body(stature=config.actor_stature(index))
    motion = generate_jump_motion(
        dims, config.actor_parameters(index), good_style()
    )
    rendered = render_poses(
        motion.poses,
        dims,
        Scene(config.scene_config()),
        shadow_config=config.shadow,
        noise_config=config.noise,
        rng=np.random.default_rng(config.seed),
    )
    return JumpAnalyzer(fast_config()).analyze(
        rendered.video, rng=np.random.default_rng(1)
    )


class TestSingleActorParity:
    """The refactor must not move the single-jumper path (pinned)."""

    def test_default_config_hash_pinned(self):
        assert config_hash(config_to_dict(AnalyzerConfig())) == "4c80ba1bb4a6f9fe"

    def test_tracking_disabled_by_default(self):
        config = AnalyzerConfig()
        assert config.tracking.enabled is False
        assert config.segmentation.max_components == 1

    def test_seed0_results_pinned(self, jump):
        from repro.model.annotation import simulate_human_annotation

        annotation = simulate_human_annotation(
            jump.motion.poses[0],
            jump.dims,
            mask=jump.person_masks[0],
            rng=np.random.default_rng(0),
        )
        analysis = JumpAnalyzer(fast_config()).analyze(
            jump.video, annotation=annotation, rng=np.random.default_rng(1)
        )
        assert analysis.report.score == 1.0
        assert analysis.events.takeoff_frame == 12
        assert analysis.events.landing_frame == 17
        assert analysis.measurement.distance == pytest.approx(
            55.23874, abs=1e-3
        )
        checksum = float(
            np.sum([[p.x0, p.y0, *p.angles_deg] for p in analysis.poses])
        )
        assert checksum == pytest.approx(22736.9326, abs=0.01)
        # Single mode: no track objects, but the wire format still
        # synthesises the tracks array (shape test below).
        assert analysis.tracks == ()


class TestTwoActorAcceptance:
    def test_exactly_two_confirmed_tracks(self, multi_analysis):
        assert [t.track_id for t in multi_analysis.tracks] == ["t0", "t1"]
        assert all(t.state == "confirmed" for t in multi_analysis.tracks)
        assert all(t.frames == 20 for t in multi_analysis.tracks)

    def test_each_track_scored_near_its_solo_run(self, scene, multi_analysis):
        # Track ids are area-ordered (t0 = taller actor 0, t1 = the
        # shorter actor 1), matching actor indices in the lane layout.
        for index, track in enumerate(multi_analysis.tracks):
            solo = solo_analysis(scene, index)
            assert track.report.score == pytest.approx(
                solo.report.score, abs=SCORE_TOLERANCE
            ), track.track_id
            assert track.measurement.distance == pytest.approx(
                solo.measurement.distance, rel=0.5
            ), track.track_id

    def test_zero_id_switches(self, scene, multi_analysis):
        mot = evaluate_mot(scene, multi_analysis)
        assert mot.num_actors == 2
        assert mot.num_tracks == 2
        assert mot.id_switches == 0
        assert mot.id_switches_per_actor == (0, 0)
        assert all(p == 1.0 for p in mot.track_purity.values())
        assert mot.mota == 1.0

    def test_diagnostics_summarise_tracks(self, multi_analysis):
        rows = multi_analysis.diagnostics["tracks"]
        assert [row["track_id"] for row in rows] == ["t0", "t1"]
        assert all(row["state"] == "confirmed" for row in rows)

    def test_primary_track_mirrors_top_level(self, multi_analysis):
        primary = max(
            multi_analysis.tracks, key=lambda t: (t.frames,)
        )
        assert multi_analysis.report.score == primary.report.score
        assert len(multi_analysis.poses) == primary.frames


class TestWireShape:
    def test_tracks_array_in_multi_mode(self, multi_analysis):
        payload = analysis_to_dict(multi_analysis)
        assert [t["track_id"] for t in payload["tracks"]] == ["t0", "t1"]
        for entry in payload["tracks"]:
            assert entry["report"]["score"] is not None
            assert entry["measurement"]["distance_px"] > 0
        json.dumps(payload)  # JSON-safe end to end

    def test_single_mode_synthesises_identical_shape(self, jump, multi_analysis):
        from repro.model.annotation import simulate_human_annotation

        annotation = simulate_human_annotation(
            jump.motion.poses[0],
            jump.dims,
            mask=jump.person_masks[0],
            rng=np.random.default_rng(0),
        )
        single = JumpAnalyzer(fast_config()).analyze(
            jump.video, annotation=annotation, rng=np.random.default_rng(1)
        )
        single_payload = analysis_to_dict(single)
        multi_payload = analysis_to_dict(multi_analysis)
        assert len(single_payload["tracks"]) == 1
        (entry,) = single_payload["tracks"]
        assert entry["track_id"] == "t0"
        assert set(entry) == set(multi_payload["tracks"][0])
        assert entry["report"] == single_payload["report"]
        assert len(entry["poses"]) == len(single_payload["poses"])


class TestCrossingScene:
    """Crossing trajectories: render, genuinely overlap, track with a
    documented bound of at most one identity switch.

    The parallel-lane scenes above never overlap, so they cannot
    exercise the tracker's occlusion handling.  ``crossing=True``
    renders :func:`crossing_actor_parameters` — two jumpers sharing one
    lane, launched toward each other — and the masks really do merge
    mid-flight.  The greedy IoU matcher may hand identities across the
    merge; empirically seed 0 costs exactly one switch, and this test
    pins that as a ceiling (improvements tighten it, regressions fail).
    """

    @pytest.fixture(scope="class")
    def crossing(self):
        return synthesize_multi_jump(
            MultiActorJumpConfig(seed=0, actors=2, crossing=True)
        )

    def test_crossing_requires_exactly_two_actors(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            MultiActorJumpConfig(seed=0, actors=3, crossing=True)

    def test_masks_genuinely_overlap(self, crossing):
        first, second = crossing.actors
        overlap = max(
            int(np.sum(a & b))
            for a, b in zip(first.masks, second.masks)
        )
        assert overlap > 0

    def test_two_tracks_at_most_one_id_switch(self, crossing):
        analyzer = JumpAnalyzer(multi_actor_config(fast_config(), actors=2))
        analysis = analyzer.analyze(
            crossing.video, rng=np.random.default_rng(0)
        )
        mot = evaluate_mot(crossing, analysis)
        assert mot.num_actors == 2
        assert mot.num_tracks == 2
        assert mot.id_switches <= 1


class TestStreamingMulti:
    def test_live_updates_carry_per_track_states(self, scene):
        config = replace(
            multi_actor_config(fast_config(), actors=2),
            streaming=StreamingConfig(warmup_frames=4),
        )
        stream = JumpAnalyzer(config).open_stream(
            rng=np.random.default_rng(1)
        )
        saw_tracked_update = False
        for frame in scene.video:
            update = stream.push_frame(frame)
            if update.phase == "tracking" and len(update.tracks) == 2:
                saw_tracked_update = True
                ids = {state.track_id for state in update.tracks}
                assert ids == {"t0", "t1"}
                payload = update.to_dict()
                assert len(payload["tracks"]) == 2
        assert saw_tracked_update
        analysis = stream.finish()
        assert [t.track_id for t in analysis.tracks] == ["t0", "t1"]
        assert all(t.report.score is not None for t in analysis.tracks)


class TestServiceTracks:
    def test_analyze_returns_tracks_on_both_surfaces(self, short_jump):
        from repro.service import ServiceHandle, encode_video

        config = AnalyzerConfig(
            tracker=TrackerConfig(
                ga=GAConfig(population_size=20, max_generations=5, patience=3),
                fitness=FitnessConfig(max_points=300),
            )
        )
        body = json.dumps(
            {"video_npz_b64": encode_video(short_jump.video), "seed": 1}
        ).encode()

        def post(address, path):
            request = urllib.request.Request(
                address + path,
                data=body,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                return json.loads(response.read())

        with ServiceHandle(config=config) as handle:
            v1 = post(handle.address, "/v1/analyze")
            alias = post(handle.address, "/analyze")
        assert isinstance(v1["tracks"], list) and len(v1["tracks"]) == 1
        assert v1["tracks"][0]["track_id"] == "t0"
        assert v1["tracks"][0]["report"]["score"] is not None
        # Deterministic seed: the deprecated alias answers the same
        # body (trace carries wall-clock timings, so compare shape).
        assert set(alias["trace"]) == set(v1["trace"])
        alias.pop("trace"), v1.pop("trace")
        assert alias == v1
