"""The ``/v1`` surface vs its deprecated unversioned aliases."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.service import ServiceHandle, route_table


@pytest.fixture(scope="module")
def service():
    with ServiceHandle() as handle:
        yield handle


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


class TestAliases:
    @pytest.mark.parametrize(
        "path", ["/health", "/standards", "/config", "/metrics", "/version"]
    )
    def test_alias_and_v1_bodies_are_identical(self, service, path):
        alias_status, alias_body, alias_headers = _get(service.address + path)
        v1_status, v1_body, v1_headers = _get(service.address + "/v1" + path)
        assert alias_status == v1_status == 200
        if path == "/metrics":
            # request counters move between the two calls; compare shape
            assert set(alias_body) == set(v1_body)
        else:
            # uptime_seconds is wall-clock and moves between the calls
            alias_body.pop("uptime_seconds", None)
            v1_body.pop("uptime_seconds", None)
            assert alias_body == v1_body
        assert alias_headers.get("Deprecation") == "true"
        assert v1_headers.get("Deprecation") is None

    def test_unknown_paths_are_404_on_both_surfaces(self, service):
        for prefix in ("", "/v1"):
            status, body, _ = _get(f"{service.address}{prefix}/nowhere")
            assert status == 404
            assert body["error"]["type"] == "not_found"
            assert set(body["error"]) == {"type", "message", "detail"}


class TestVersionEndpoint:
    def test_version_payload(self, service):
        import repro

        status, body, _ = _get(service.address + "/v1/version")
        assert status == 200
        assert body["api_version"] == "v1"
        assert body["package_version"] == repro.__version__
        assert isinstance(body["config_hash"], str) and body["config_hash"]


class TestRouteTable:
    def test_route_table_is_sorted_and_versioned(self):
        table = route_table()
        assert table == sorted(table)
        assert all(" /v1/" in entry for entry in table)

    def test_every_get_route_is_reachable(self, service):
        """Concrete GET routes answer something other than 404."""
        for entry in route_table():
            method, path = entry.split(" ", 1)
            if method != "GET" or "{" in path:
                continue
            status, _, _ = _get(service.address + path)
            assert status != 404, entry
