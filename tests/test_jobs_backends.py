"""Job store backends: the shared-directory queue and its guarantees.

The headline invariant is **zero double-claims**: any number of
replicas may race ``claim_next`` on one shared directory, and every
queued job is handed to exactly one of them (``os.replace`` of the
queue marker is the atomic arbiter).  The rest is plumbing that has to
hold for that to matter — monotonic ids across processes, per-job
records readable by every replica, and a manager drain loop that
actually runs what it claims.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.jobs import (
    JobManager,
    JobsConfig,
    JobState,
    JobStore,
    SharedDirectoryBackend,
    SingleProcessBackend,
)
from repro.perf.pool import WorkerPool
from repro.video.sequence import VideoSequence


@pytest.fixture()
def store_root(tmp_path):
    return tmp_path / "store"


def _backend(root):
    return SharedDirectoryBackend(root)


class TestSingleProcessBackend:
    def test_is_the_non_shared_default(self, tmp_path):
        backend = SingleProcessBackend()
        assert backend.kind == "single"
        assert not backend.shared
        store = JobStore()
        assert not store.shared
        assert store.backend.kind == "single"

    def test_refuses_shared_operations(self):
        backend = SingleProcessBackend()
        with pytest.raises(ConfigurationError):
            backend.write_job({"id": "j1"})
        with pytest.raises(ConfigurationError):
            backend.enqueue("j1")
        assert backend.claim_next("owner") is None


class TestSharedDirectoryBackend:
    def test_seq_is_monotonic_across_instances(self, store_root):
        first = _backend(store_root)
        second = _backend(store_root)
        seqs = [first.allocate_seq(), second.allocate_seq(),
                first.allocate_seq()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 3

    def test_job_records_are_cross_visible(self, store_root):
        writer = _backend(store_root)
        reader = _backend(store_root)
        writer.write_job({"id": "j1", "state": "submitted"})
        assert reader.read_job("j1") == {"id": "j1", "state": "submitted"}
        assert reader.list_job_ids() == ["j1"]
        reader.remove_job("j1")
        assert writer.read_job("j1") is None
        assert writer.list_job_ids() == []

    def test_read_is_defensive(self, store_root):
        backend = _backend(store_root)
        assert backend.read_job("missing") is None
        (store_root / "jobs" / "bad.json").write_text("{not json")
        assert backend.read_job("bad") is None

    def test_claims_are_fifo_and_exclusive(self, store_root):
        backend = _backend(store_root)
        for job_id in ("j00001-a", "j00002-b", "j00003-c"):
            backend.write_job({"id": job_id})
            backend.enqueue(job_id)
        assert backend.claim_next("alice") == "j00001-a"
        assert backend.claim_next("bob") == "j00002-b"
        assert backend.claim_owner("j00001-a") == "alice"
        assert backend.claim_owner("j00002-b") == "bob"
        assert backend.queued_ids() == ["j00003-c"]
        assert backend.claim_next("carol") == "j00003-c"
        assert backend.claim_next("dave") is None

    def test_contended_claims_never_double_assign(self, store_root):
        """Many threads over two replicas: every job claimed exactly once."""
        jobs = [f"j{i:05d}-x" for i in range(40)]
        setup = _backend(store_root)
        for job_id in jobs:
            setup.write_job({"id": job_id})
            setup.enqueue(job_id)

        replicas = [_backend(store_root) for _ in range(2)]
        claims: list[tuple[str, str]] = []
        lock = threading.Lock()

        def drain(replica: SharedDirectoryBackend, owner: str) -> None:
            while True:
                job_id = replica.claim_next(owner)
                if job_id is None:
                    return
                with lock:
                    claims.append((owner, job_id))

        threads = [
            threading.Thread(target=drain, args=(replica, f"owner-{i}"))
            for i, replica in enumerate(replicas)
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        claimed_ids = [job_id for _, job_id in claims]
        assert sorted(claimed_ids) == jobs  # all claimed, none twice
        assert setup.queued_ids() == []


class TestSharedJobStore:
    def _store(self, root):
        return JobStore(backend=_backend(root))

    def test_create_is_visible_to_other_replicas(self, store_root):
        a = self._store(store_root)
        b = self._store(store_root)
        payload = a.create("deadbeef00", seed=7)
        job_id = payload["id"]
        seen = b.payload(job_id)
        assert seen is not None
        assert seen["state"] == JobState.SUBMITTED
        assert seen["seed"] == 7

    def test_ids_sort_in_submission_order(self, store_root):
        store = self._store(store_root)
        ids = [store.create("d" * 10)["id"] for _ in range(3)]
        assert ids == sorted(ids)

    def test_enqueue_claim_adopt_roundtrip(self, store_root):
        a = self._store(store_root)
        b = self._store(store_root)
        job_id = a.create("deadbeef00")["id"]
        a.enqueue(job_id)
        assert b.claim_next("replica-b") == job_id
        adopted = b.adopt(job_id)
        assert adopted is not None and adopted["id"] == job_id
        # Adoption makes the job locally owned: replica B can run it.
        assert b.mark_running(job_id)
        assert a.payload(job_id)["state"] == JobState.RUNNING

    def test_cancel_of_queued_job_wins_over_late_claim(self, store_root):
        a = self._store(store_root)
        b = self._store(store_root)
        job_id = a.create("deadbeef00")["id"]
        a.enqueue(job_id)
        state = b.request_cancel(job_id)
        assert state == JobState.CANCELLED
        # The queue marker may still exist; a claimer must notice the
        # terminal record and skip the job instead of running it.
        claimed = a.claim_next("replica-a")
        if claimed is not None:
            adopted = a.adopt(claimed)
            assert adopted["state"] == JobState.CANCELLED
            assert not a.mark_running(claimed)

    def test_backend_and_persist_path_are_exclusive(self, store_root):
        with pytest.raises(ConfigurationError):
            JobStore(persist_path="x.json", backend=_backend(store_root))


class TestJobsConfigValidation:
    def test_store_dir_requires_checkpoint_dir(self, tmp_path):
        with pytest.raises(ConfigurationError, match="checkpoint_dir"):
            JobsConfig(store_dir=str(tmp_path / "store"))

    def test_store_dir_excludes_persist_path(self, tmp_path):
        with pytest.raises(ConfigurationError, match="mutually"):
            JobsConfig(
                store_dir=str(tmp_path / "store"),
                checkpoint_dir=str(tmp_path / "ckpt"),
                persist_path=str(tmp_path / "jobs.json"),
            )

    def test_drain_interval_must_be_positive(self, tmp_path):
        with pytest.raises(ConfigurationError, match="drain_interval"):
            JobsConfig(
                store_dir=str(tmp_path / "store"),
                checkpoint_dir=str(tmp_path / "ckpt"),
                store_drain_interval_seconds=0.0,
            )


class StubAnalyzer:
    def analyze(self, video, annotation=None, seed=0, **kwargs):
        return {"frames": len(video), "seed": seed}


def _shared_manager(tmp_path) -> JobManager:
    config = JobsConfig(
        store_dir=str(tmp_path / "store"),
        checkpoint_dir=str(tmp_path / "ckpt"),
    )
    return JobManager(
        config, pool=WorkerPool(2), serializer=lambda analysis: dict(analysis)
    )


def _wait_terminal(store: JobStore, job_ids, timeout: float = 30.0):
    import time

    deadline = time.time() + timeout
    while time.time() < deadline:
        payloads = {job_id: store.payload(job_id) for job_id in job_ids}
        if all(
            p is not None and p["state"] in JobState.TERMINAL
            for p in payloads.values()
        ):
            return payloads
        time.sleep(0.05)
    raise AssertionError(f"jobs not terminal after {timeout}s: {payloads}")


class TestTwoManagerDrain:
    def test_two_replicas_drain_one_queue(self, tmp_path):
        """Ten jobs, two managers: every job runs exactly once."""
        video = VideoSequence(np.zeros((4, 16, 16, 3)))
        a = _shared_manager(tmp_path)
        b = _shared_manager(tmp_path)
        try:
            job_ids = [
                a.submit_analysis(StubAnalyzer(), video, seed=i)["id"]
                for i in range(10)
            ]
            factory = lambda degradation=None: StubAnalyzer()  # noqa: E731
            # Alternate manual drains: deterministic interleaving.
            claimed_by = {}
            for _ in range(30):
                for manager, label in ((a, "a"), (b, "b")):
                    job_id = manager.drain_once(factory)
                    if job_id is not None:
                        assert job_id not in claimed_by, "double claim!"
                        claimed_by[job_id] = label
                if len(claimed_by) == len(job_ids):
                    break
            assert sorted(claimed_by) == sorted(job_ids)
            assert set(claimed_by.values()) == {"a", "b"}

            payloads = _wait_terminal(a.store, job_ids)
            assert all(
                p["state"] == JobState.SUCCEEDED for p in payloads.values()
            )
            # Results are readable from the replica that did NOT run them.
            for job_id, label in claimed_by.items():
                other = b if label == "a" else a
                result = other.store.payload(job_id, include_result=True)
                assert result["result"]["frames"] == 4
            assert a.stats()["claimed"] + b.stats()["claimed"] == 10
        finally:
            a.close()
            b.close()

    def test_background_drain_thread(self, tmp_path):
        video = VideoSequence(np.zeros((4, 16, 16, 3)))
        manager = _shared_manager(tmp_path)
        try:
            factory = lambda degradation=None: StubAnalyzer()  # noqa: E731
            assert manager.start_drain(factory)
            assert not manager.start_drain(factory)  # already running
            job_ids = [
                manager.submit_analysis(StubAnalyzer(), video, seed=i)["id"]
                for i in range(3)
            ]
            payloads = _wait_terminal(manager.store, job_ids)
            assert all(
                p["state"] == JobState.SUCCEEDED for p in payloads.values()
            )
        finally:
            manager.close()

    def test_non_shared_manager_has_no_drain(self, tmp_path):
        config = JobsConfig()
        manager = JobManager(
            config,
            pool=WorkerPool(1),
            serializer=lambda analysis: dict(analysis),
        )
        try:
            assert not manager.start_drain(lambda degradation=None: None)
            assert manager.drain_once(lambda degradation=None: None) is None
        finally:
            manager.close()
