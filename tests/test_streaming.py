"""Streaming core tests: push_frame/finish parity, live mode, errors."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import get_preset
from repro.errors import ConfigurationError, StreamError, VideoError
from repro.ga.engine import GAConfig
from repro.ga.temporal import TrackerConfig
from repro.model.fitness import FitnessConfig
from repro.pipeline import AnalyzerConfig, JumpAnalyzer, StreamingConfig


def _fast_config(**streaming_overrides):
    config = AnalyzerConfig(
        tracker=TrackerConfig(
            ga=GAConfig(population_size=30, max_generations=10, patience=5),
            fitness=FitnessConfig(max_points=500),
            containment_margin=1,
            min_inside_fraction=0.95,
            containment_samples=7,
        ),
    )
    if streaming_overrides:
        config = dataclasses.replace(
            config, streaming=StreamingConfig(**streaming_overrides)
        )
    return config


def _live_analyzer(warmup=4, **streaming_overrides):
    return JumpAnalyzer(
        _fast_config(warmup_frames=warmup, **streaming_overrides)
    )


class TestBatchParity:
    def test_paper_preset_stream_is_byte_identical(self, short_jump):
        """Frame-at-a-time pushes == one analyze() on the paper preset."""
        config = get_preset("paper")
        batch = JumpAnalyzer(config).analyze(
            short_jump.video, rng=np.random.default_rng(1)
        )
        stream = JumpAnalyzer(config).open_stream(
            rng=np.random.default_rng(1)
        )
        for frame in short_jump.video:
            update = stream.push_frame(frame)
            assert update.phase == "buffering"
            assert update.provisional is None
        streamed = stream.finish()

        assert streamed.config_hash == batch.config_hash
        assert streamed.report.score == batch.report.score
        assert streamed.events == batch.events
        assert streamed.measurement.distance == batch.measurement.distance
        assert len(streamed.segmentations) == len(batch.segmentations)
        for ours, theirs in zip(streamed.segmentations, batch.segmentations):
            assert np.array_equal(ours.person, theirs.person)
        assert len(streamed.poses) == len(batch.poses)
        for ours, theirs in zip(streamed.poses, batch.poses):
            assert ours.x0 == theirs.x0 and ours.y0 == theirs.y0
            assert np.array_equal(ours.angles_deg, theirs.angles_deg)

    def test_extend_adopts_video_without_copy(self, short_jump):
        stream = JumpAnalyzer(_fast_config()).open_stream()
        stream.extend(short_jump.video)
        assert stream.frames_seen == len(short_jump.video)
        assert stream._video is short_jump.video

    def test_empty_finish_is_video_error(self):
        stream = JumpAnalyzer(_fast_config()).open_stream()
        with pytest.raises(VideoError):
            stream.finish()


class TestLiveMode:
    def test_phases_and_provisional(self, short_jump):
        stream = _live_analyzer(warmup=4).open_stream(
            rng=np.random.default_rng(1)
        )
        assert stream.live
        phases = []
        provisional_frames = []
        for frame in short_jump.video:
            update = stream.push_frame(frame)
            phases.append(update.phase)
            if update.provisional is not None:
                provisional_frames.append(update.frames_seen)
        # Three warmup updates, then the go-live drain reports tracking.
        assert phases[:4] == ["warmup", "warmup", "warmup", "tracking"]
        assert set(phases[4:]) == {"tracking"}
        # Provisional estimates need >= 4 poses, then refresh every frame.
        assert provisional_frames
        assert provisional_frames[0] >= 4
        latest = stream.provisional
        assert latest is not None
        assert latest.takeoff_frame < latest.landing_frame
        assert latest.score is not None

        analysis = stream.finish()
        assert len(analysis.poses) == len(short_jump.video)
        assert len(analysis.segmentations) == len(short_jump.video)
        assert analysis.report.score is not None
        stages = [timing.name for timing in analysis.trace.stages]
        assert stages[:2] == ["segmentation", "tracking"]
        for tail in ("smoothing", "events", "scoring", "measurement"):
            assert tail in stages

    def test_tracking_updates_carry_pose_and_box(self, short_jump):
        stream = _live_analyzer(warmup=4).open_stream(
            rng=np.random.default_rng(1)
        )
        update = None
        for frame in short_jump.video:
            update = stream.push_frame(frame)
        assert update.pose is not None
        x, y, w, h = update.pose_box
        assert w > 0 and h > 0
        assert update.health is not None

    def test_running_background_mode(self, short_jump):
        analyzer = _live_analyzer(warmup=4, background="running")
        stream = analyzer.open_stream(rng=np.random.default_rng(1))
        for frame in short_jump.video:
            stream.push_frame(frame)
        analysis = stream.finish()
        assert len(analysis.poses) == len(short_jump.video)

    def test_short_stream_falls_back_to_batch(self, short_jump):
        """A live stream that ends inside its warmup still analyzes."""
        warmup = len(short_jump.video) + 5
        stream = _live_analyzer(warmup=warmup).open_stream(
            rng=np.random.default_rng(1)
        )
        for frame in short_jump.video:
            assert stream.push_frame(frame).phase == "warmup"
        analysis = stream.finish()
        assert len(analysis.poses) == len(short_jump.video)


class TestStreamErrors:
    def test_push_after_finish(self, short_jump):
        stream = JumpAnalyzer(_fast_config()).open_stream()
        stream.extend(short_jump.video)
        stream.finish()
        with pytest.raises(StreamError):
            stream.push_frame(short_jump.video.frames[0])

    def test_double_finish(self, short_jump):
        stream = JumpAnalyzer(_fast_config()).open_stream()
        stream.extend(short_jump.video)
        stream.finish()
        with pytest.raises(StreamError):
            stream.finish()


class TestStreamingConfig:
    def test_warmup_one_is_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamingConfig(warmup_frames=1)

    def test_negative_warmup_is_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamingConfig(warmup_frames=-1)

    def test_unknown_background_is_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamingConfig(warmup_frames=4, background="bogus")

    def test_streaming_block_is_hashed(self):
        from repro.config import config_hash

        default = config_hash(_fast_config())
        live = config_hash(_fast_config(warmup_frames=4))
        assert default != live


class TestChaosStreaming:
    def test_streaming_survival_matches_batch(self, short_jump):
        """Default (warmup 0) streaming buffers, so survival is batch's."""
        from repro.faults.chaos import default_fault_grid, run_chaos

        plan = default_fault_grid(seed=0)
        config = _fast_config()
        batch = run_chaos(
            short_jump.video, config=config, plan=plan, rng_seed=0
        )
        streamed = run_chaos(
            short_jump.video,
            config=config,
            plan=plan,
            rng_seed=0,
            streaming=True,
        )
        assert streamed.survival_rate == batch.survival_rate
        assert [o.verdict for o in streamed.outcomes] == [
            o.verdict for o in batch.outcomes
        ]
