"""Temporal localisation: signals, windows, and the analyzer front-stage.

Four contracts pinned here:

1. **Segmenter mechanics** — hysteresis seeding/extension, gap
   merging, flicker dropping *before* padding, edge clamping and the
   ``max_attempts`` truncation, all on hand-built energy signals.
2. **Window accuracy** — the synthetic two-attempt long clip yields
   exactly two windows overlapping ground truth (IoU >= 0.5 each),
   deterministically; an idle clip yields none.
3. **Single-attempt parity** — a plain jump clip analysed with
   localisation *enabled* reproduces the localisation-off result
   byte-identically (score, events, rule verdicts, poses), while the
   config hash moves (the knob participates in ``config_hash``).
4. **No-attempts path** — a zero-motion video is a valid input:
   empty ``attempts``, ``no_attempts`` diagnostics, no exception.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.config import config_hash, config_to_dict
from repro.ga.engine import GAConfig
from repro.ga.temporal import TrackerConfig
from repro.localization import (
    AttemptWindow,
    LocalizationConfig,
    localize_attempts,
    motion_energy,
)
from repro.localization.windows import find_attempt_windows
from repro.model.annotation import simulate_human_annotation
from repro.model.fitness import FitnessConfig
from repro.pipeline import AnalyzerConfig, JumpAnalyzer
from repro.video.synthesis import (
    LongClipConfig,
    synthesize_idle_clip,
    synthesize_long_clip,
)


def fast_config(**overrides):
    return AnalyzerConfig(
        tracker=TrackerConfig(
            ga=GAConfig(population_size=30, max_generations=10, patience=5),
            fitness=FitnessConfig(max_points=500),
        ),
        **overrides,
    )


def localizing(config):
    return replace(
        config, localization=replace(config.localization, enabled=True)
    )


@pytest.fixture(scope="module")
def long_clip():
    return synthesize_long_clip(LongClipConfig(seed=0, attempts=2))


class TestAttemptWindow:
    def test_frames_and_iou(self):
        a = AttemptWindow(10, 30, 1.0)
        b = AttemptWindow(20, 40, 1.0)
        assert a.frames == 20
        assert a.iou(b) == pytest.approx(10 / 30)
        assert a.iou(a) == 1.0
        assert a.iou(AttemptWindow(40, 50, 1.0)) == 0.0

    def test_to_dict(self):
        d = AttemptWindow(3, 9, 0.5).to_dict()
        assert d == {"start": 3, "end": 9, "frames": 6, "confidence": 0.5}


class TestFindAttemptWindows:
    CONFIG = LocalizationConfig(
        enabled=True,
        activity_floor=0.1,
        activity_fraction=0.5,
        min_window_frames=4,
        merge_gap=2,
        pad_before=1,
        pad_after=1,
    )

    def test_hysteresis_extends_over_above_floor_run(self):
        # One seed frame inside a longer above-floor run: the whole run
        # (plus padding) becomes the window.
        energy = np.array([0.0] * 5 + [0.2, 0.2, 0.9, 0.2, 0.2] + [0.0] * 5)
        spans, seed, floor = find_attempt_windows(energy, self.CONFIG)
        assert spans == [(4, 11)]  # run [5, 10) padded by 1/1
        assert floor == 0.1
        assert seed > floor

    def test_above_floor_run_without_seed_is_dropped(self):
        # An above-floor plateau that never reaches the seed threshold
        # stays dead time (that is what hysteresis means here).
        energy = np.array(
            [0.0] * 4 + [0.9] * 6 + [0.0] * 4 + [0.15] * 6 + [0.0] * 4
        )
        spans, _, _ = find_attempt_windows(energy, self.CONFIG)
        assert spans == [(3, 11)]

    def test_merge_gap(self):
        energy = np.array(
            [0.0] * 4 + [0.9] * 5 + [0.0, 0.0] + [0.9] * 5 + [0.0] * 4
        )
        spans, _, _ = find_attempt_windows(energy, self.CONFIG)
        assert len(spans) == 1  # 2-frame gap <= merge_gap merges

    def test_flicker_dropped_before_padding(self):
        # A 2-frame spike < min_window_frames must not survive by being
        # padded up to the minimum length.
        energy = np.array([0.0] * 8 + [0.9, 0.9] + [0.0] * 8)
        spans, _, _ = find_attempt_windows(energy, self.CONFIG)
        assert spans == []

    def test_padding_clamped_to_video(self):
        energy = np.array([0.9] * 6 + [0.0] * 3)
        spans, _, _ = find_attempt_windows(energy, self.CONFIG)
        assert spans == [(0, 7)]

    def test_empty_and_quiet_signals(self):
        assert find_attempt_windows(np.array([]), self.CONFIG)[0] == []
        quiet = np.full(20, 0.01)
        assert find_attempt_windows(quiet, self.CONFIG)[0] == []

    def test_truncation_keeps_best_in_temporal_order(self, long_clip):
        config = replace(
            LocalizationConfig(enabled=True), max_attempts=1
        )
        result = localize_attempts(long_clip.video, config)
        assert result.truncated
        assert len(result.windows) == 1
        full = localize_attempts(
            long_clip.video, LocalizationConfig(enabled=True)
        )
        best = full.windows[full.primary_index]
        assert result.windows[0] == best


class TestLongClipLocalization:
    def test_two_attempts_found_with_iou(self, long_clip):
        result = localize_attempts(long_clip.video, LocalizationConfig())
        assert len(result.windows) == 2
        assert not result.truncated
        for window, (start, end) in zip(result.windows, long_clip.windows):
            truth = AttemptWindow(start, end, 1.0)
            assert window.iou(truth) >= 0.5
        # Temporal order, and windows never overlap.
        assert result.windows[0].end <= result.windows[1].start

    def test_deterministic(self, long_clip):
        first = localize_attempts(long_clip.video, LocalizationConfig())
        second = localize_attempts(long_clip.video, LocalizationConfig())
        assert first == second

    def test_motion_energy_shape_and_dead_time(self, long_clip):
        energy = motion_energy(long_clip.video, 0.20)
        assert len(energy) == len(long_clip.video)
        assert energy[0] == 0.0  # no predecessor frame
        config = long_clip.config
        # Mid-dead-time frames are quieter than mid-attempt frames.
        mid_dead = config.dead_pre // 2
        mid_jump = long_clip.windows[0][0] + config.attempt_frames // 2
        assert energy[mid_dead] < energy[mid_jump]

    def test_idle_clip_has_no_windows(self):
        idle = synthesize_idle_clip(num_frames=30, seed=0)
        result = localize_attempts(idle.video, LocalizationConfig())
        assert result.windows == ()
        assert result.primary_index is None


class TestLocalizedAnalysis:
    @pytest.fixture(scope="class")
    def localized(self, long_clip):
        analyzer = JumpAnalyzer(localizing(fast_config()))
        return analyzer.analyze(
            long_clip.video, rng=np.random.default_rng(0)
        )

    def test_two_scored_attempts(self, localized, long_clip):
        assert len(localized.attempts) == 2
        for attempt, (start, end) in zip(
            localized.attempts, long_clip.windows
        ):
            truth = AttemptWindow(start, end, 1.0)
            assert attempt.window.iou(truth) >= 0.5
            assert attempt.analysis.report.score > 0.0
            assert attempt.analysis.measurement.distance > 0.0

    def test_ordering_ids_and_primary(self, localized):
        assert [a.attempt_id for a in localized.attempts] == ["a0", "a1"]
        starts = [a.window.start for a in localized.attempts]
        assert starts == sorted(starts)
        assert sum(a.primary for a in localized.attempts) == 1
        primary = next(a for a in localized.attempts if a.primary)
        # The top-level fields mirror the primary attempt.
        assert localized.report is primary.analysis.report
        assert localized.events is primary.analysis.events

    def test_attempts_diagnostics(self, localized):
        entries = localized.diagnostics["attempts"]
        assert [e["attempt_id"] for e in entries] == ["a0", "a1"]
        for entry in entries:
            assert set(entry) >= {"start", "end", "confidence", "score"}

    def test_localization_result_attached(self, localized, long_clip):
        assert localized.localization is not None
        assert localized.localization.num_frames == len(long_clip.video)


class TestSingleAttemptParity:
    """Localisation on + one clean jump == the classic result, byte for byte."""

    @pytest.fixture(scope="class")
    def pair(self, jump):
        annotation = simulate_human_annotation(
            jump.motion.poses[0],
            jump.dims,
            mask=jump.person_masks[0],
            rng=np.random.default_rng(0),
        )
        classic = JumpAnalyzer(fast_config()).analyze(
            jump.video, annotation=annotation, rng=np.random.default_rng(1)
        )
        localized = JumpAnalyzer(localizing(fast_config())).analyze(
            jump.video, annotation=annotation, rng=np.random.default_rng(1)
        )
        return classic, localized

    def test_window_spans_whole_clip(self, pair, jump):
        _, localized = pair
        assert len(localized.attempts) == 1
        window = localized.attempts[0].window
        assert (window.start, window.end) == (0, len(jump.video))

    def test_score_events_verdicts_identical(self, pair):
        classic, localized = pair
        assert localized.report.score == classic.report.score
        assert localized.events == classic.events
        for mine, theirs in zip(
            localized.report.results, classic.report.results
        ):
            assert mine.rule.rule_id == theirs.rule.rule_id
            assert mine.passed == theirs.passed
            assert mine.value == theirs.value

    def test_poses_identical(self, pair):
        classic, localized = pair
        assert len(localized.poses) == len(classic.poses)
        for mine, theirs in zip(localized.poses, classic.poses):
            assert mine.to_genes().tolist() == theirs.to_genes().tolist()

    def test_config_hash_moves_with_the_knob(self, pair):
        classic, localized = pair
        assert localized.config_hash != classic.config_hash
        assert config_hash(config_to_dict(localizing(fast_config()))) == (
            localized.config_hash
        )


class TestNoAttempts:
    def test_zero_motion_video_is_clean(self):
        idle = synthesize_idle_clip(num_frames=30, seed=0)
        analyzer = JumpAnalyzer(localizing(fast_config()))
        analysis = analyzer.analyze(idle.video, rng=np.random.default_rng(0))
        assert analysis.attempts == ()
        assert analysis.diagnostics["no_attempts"] is True
        assert analysis.diagnostics["attempts"] == []
        assert analysis.report.score == 0.0
        assert analysis.localization is not None
        assert analysis.localization.windows == ()


class TestLocalizationConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"pixel_threshold": 0.0},
            {"pixel_threshold": 1.0},
            {"activity_floor": -0.1},
            {"activity_fraction": 0.0},
            {"min_window_frames": 3},
            {"merge_gap": -1},
            {"pad_before": -1},
            {"max_attempts": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            LocalizationConfig(**kwargs)
