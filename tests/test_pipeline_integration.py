"""End-to-end integration tests: video in, report out."""

import numpy as np
import pytest

from repro.errors import SegmentationError, VideoError
from repro.ga.engine import GAConfig
from repro.ga.temporal import TrackerConfig
from repro.model.annotation import simulate_human_annotation
from repro.model.fitness import FitnessConfig
from repro.pipeline import AnalyzerConfig, JumpAnalyzer, analyze_video
from repro.scoring.standards import Standard
from repro.video.sequence import VideoSequence
from repro.video.synthesis import synthesize_flawed_jump


def _fast_analyzer(**overrides):
    config = AnalyzerConfig(
        tracker=TrackerConfig(
            ga=GAConfig(population_size=30, max_generations=10, patience=5),
            fitness=FitnessConfig(max_points=500),
            containment_margin=1,
            min_inside_fraction=0.95,
            containment_samples=7,
        ),
        **overrides,
    )
    return JumpAnalyzer(config)


@pytest.fixture(scope="module")
def analysis(jump):
    annotation = simulate_human_annotation(
        jump.motion.poses[0],
        jump.dims,
        mask=jump.person_masks[0],
        rng=np.random.default_rng(0),
    )
    return _fast_analyzer().analyze(
        jump.video, annotation=annotation, rng=np.random.default_rng(1)
    )


# module-scoped `jump` alias so the fixture above can be module-scoped
@pytest.fixture(scope="module")
def jump():
    from repro.video.synthesis import SyntheticJumpConfig, synthesize_jump

    return synthesize_jump(SyntheticJumpConfig(seed=0))


class TestFullPipeline:
    def test_all_artifacts_present(self, analysis, jump):
        assert len(analysis.segmentations) == jump.num_frames
        assert len(analysis.poses) == jump.num_frames
        assert analysis.background.shape == (120, 160, 3)
        assert analysis.report.results
        assert analysis.measurement.distance > 0

    def test_clean_jump_passes_all_rules(self, analysis):
        assert [r.rule.rule_id for r in analysis.report.failed] == []

    def test_events_sane(self, analysis, jump):
        assert abs(analysis.events.takeoff_frame - jump.motion.takeoff_frame) <= 2
        assert analysis.events.landing_frame > analysis.events.takeoff_frame

    def test_distance_close_to_truth(self, analysis, jump):
        params = jump.motion.params
        expected = (
            params.jump_distance
            + params.settle_advance
            - jump.dims.lengths[7]
        )
        assert analysis.measurement.distance == pytest.approx(expected, abs=10.0)

    def test_silhouettes_property(self, analysis, jump):
        assert len(analysis.silhouettes) == jump.num_frames

    def test_auto_annotation_path(self, jump):
        result = _fast_analyzer().analyze(
            jump.video, annotation=None, rng=np.random.default_rng(2)
        )
        assert len(result.poses) == jump.num_frames

    def test_convenience_wrapper(self, jump):
        result = analyze_video(
            jump.video.clip(0, 6),
            config=_fast_analyzer().config,
            rng=np.random.default_rng(3),
        )
        assert len(result.poses) == 6

    def test_kalman_smoothing_mode(self, jump):
        result = _fast_analyzer(smoothing_mode="kalman").analyze(
            jump.video.clip(0, 8), rng=np.random.default_rng(4)
        )
        assert len(result.poses) == 8

    def test_invalid_smoothing_mode(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            AnalyzerConfig(smoothing_mode="butterworth")


class TestFlawDetectionEndToEnd:
    def test_detects_missing_backswing(self):
        flawed = synthesize_flawed_jump(Standard.E3, seed=13)
        annotation = simulate_human_annotation(
            flawed.motion.poses[0],
            flawed.dims,
            mask=flawed.person_masks[0],
            rng=np.random.default_rng(13),
        )
        result = JumpAnalyzer().analyze(
            flawed.video, annotation=annotation, rng=np.random.default_rng(13)
        )
        assert Standard.E3 in result.report.violated_standards


class TestErrorPaths:
    def test_zero_frame_video_raises_video_error(self):
        with pytest.raises(VideoError, match="zero-frame"):
            _fast_analyzer().analyze([])

    def test_zero_frame_array_rejected_at_construction(self):
        with pytest.raises(VideoError, match="at least one frame"):
            VideoSequence(np.zeros((0, 4, 4, 3)))

    def test_empty_first_frame_rejected(self, jump):
        # a video of pure background: nothing to segment in frame 0
        background = jump.background
        video = VideoSequence([background.copy() for _ in range(6)])
        with pytest.raises(SegmentationError):
            _fast_analyzer().analyze(video)
