"""Tests for the non-GA search baselines."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ga.baselines import HillClimbConfig, hill_climb, nelder_mead, random_search
from repro.model.pose import GENES


def _quadratic(target):
    def fitness(genes):
        genes = np.atleast_2d(genes)
        return ((genes - target) ** 2).sum(axis=1)

    return fitness


TARGET = np.full(GENES, 20.0)


class TestHillClimb:
    def test_improves(self, rng):
        start = TARGET + rng.normal(0, 5, GENES)
        result = hill_climb(start, _quadratic(TARGET), rng=rng)
        assert result.best_fitness < _quadratic(TARGET)(start[None, :])[0]

    def test_budget_respected(self, rng):
        config = HillClimbConfig(iterations=50)
        result = hill_climb(TARGET.copy(), _quadratic(TARGET), config, rng)
        assert result.total_evaluations == 51

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HillClimbConfig(iterations=0)
        with pytest.raises(ConfigurationError):
            hill_climb(np.zeros(5), _quadratic(TARGET))


class TestRandomSearch:
    def test_keeps_best(self, rng):
        def sampler(n):
            return rng.uniform(0, 40, (n, GENES))

        result = random_search(sampler, _quadratic(TARGET), budget=500)
        assert result.total_evaluations == 500
        curve = result.fitness_curve()
        assert (np.diff(curve) <= 1e-12).all()

    def test_budget_validation(self, rng):
        with pytest.raises(ConfigurationError):
            random_search(lambda n: np.zeros((n, GENES)), _quadratic(TARGET), budget=0)


class TestNelderMead:
    def test_refines_near_start(self):
        start = TARGET + 3.0
        result = nelder_mead(start, _quadratic(TARGET), max_evaluations=800)
        assert result.best_fitness < 1.0

    def test_angles_wrapped(self):
        start = np.full(GENES, 359.0)
        target = np.full(GENES, 361.0)  # optimum just over the wrap
        result = nelder_mead(start, _quadratic(target), max_evaluations=400)
        assert (result.best_genes[2:] >= 0).all()
        assert (result.best_genes[2:] < 360).all()

    def test_evaluations_recorded(self):
        result = nelder_mead(TARGET.copy(), _quadratic(TARGET), max_evaluations=100)
        assert 0 < result.total_evaluations <= 110
