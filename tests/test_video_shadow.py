"""Tests for cast-shadow synthesis (geometry and photometry)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.imaging.color import rgb_to_hsv
from repro.video.synthesis.shadow import (
    ShadowConfig,
    apply_shadow,
    project_shadow_mask,
)


def _person(shape=(40, 60)):
    mask = np.zeros(shape, dtype=bool)
    mask[10:30, 20:26] = True  # standing block, feet at row 29
    return mask


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ShadowConfig(value_gain=0.0)
        with pytest.raises(ConfigurationError):
            ShadowConfig(value_gain=1.0)
        with pytest.raises(ConfigurationError):
            ShadowConfig(saturation_shift=0.9)
        with pytest.raises(ConfigurationError):
            ShadowConfig(flatten=-0.5)


class TestProjection:
    def test_shadow_on_floor_only(self):
        config = ShadowConfig(softness=0)
        shadow = project_shadow_mask(_person(), ground_row=30, config=config)
        rows = np.nonzero(shadow)[0]
        assert rows.min() >= 30

    def test_shadow_extends_forward(self):
        config = ShadowConfig(softness=0, shear=0.5)
        shadow = project_shadow_mask(_person(), ground_row=30, config=config)
        cols = np.nonzero(shadow)[1]
        assert cols.max() > 26  # beyond the person's right edge

    def test_disabled(self):
        config = ShadowConfig(enabled=False)
        assert not project_shadow_mask(_person(), 30, config).any()

    def test_excludes_person(self):
        config = ShadowConfig(softness=2)
        person = _person()
        shadow = project_shadow_mask(person, 28, config)  # feet below ground
        assert not (shadow & person).any()

    def test_empty_person(self):
        config = ShadowConfig()
        empty = np.zeros((20, 20), dtype=bool)
        assert not project_shadow_mask(empty, 10, config).any()


class TestPhotometry:
    def test_hsv_shadow_model(self, rng):
        image = np.clip(rng.random((20, 20, 3)) * 0.5 + 0.3, 0, 1)
        shadow = np.zeros((20, 20), dtype=bool)
        shadow[10:15, 5:15] = True
        config = ShadowConfig(value_gain=0.6, saturation_shift=0.05)
        shaded = apply_shadow(image, shadow, config)

        before = rgb_to_hsv(image)
        after = rgb_to_hsv(shaded)
        # Value scaled by the gain, hue preserved: Eq. 1's assumptions.
        assert np.allclose(
            after[..., 2][shadow], before[..., 2][shadow] * 0.6, atol=1e-6
        )
        from repro.imaging.color import hue_distance

        assert hue_distance(
            after[..., 0][shadow], before[..., 0][shadow]
        ).max() < 1.0
        # Untouched outside.
        assert np.allclose(shaded[~shadow], image[~shadow])

    def test_input_unchanged(self, rng):
        image = rng.random((10, 10, 3))
        original = image.copy()
        shadow = np.ones((10, 10), dtype=bool)
        apply_shadow(image, shadow, ShadowConfig())
        assert np.array_equal(image, original)
