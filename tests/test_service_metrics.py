"""Service observability and error-handling tests: /metrics + HTTP 400s."""

import json
import urllib.error
import urllib.request

import pytest

from repro.ga.engine import GAConfig
from repro.ga.temporal import TrackerConfig
from repro.model.fitness import FitnessConfig
from repro.pipeline import AnalyzerConfig
from repro.service import ServiceHandle, request_analysis


@pytest.fixture(scope="module")
def tiny_jump():
    from repro.video.synthesis import (
        JumpParameters,
        SyntheticJumpConfig,
        synthesize_jump,
    )

    return synthesize_jump(
        SyntheticJumpConfig(seed=5, params=JumpParameters(num_frames=8))
    )


@pytest.fixture(scope="module")
def service():
    config = AnalyzerConfig(
        tracker=TrackerConfig(
            ga=GAConfig(population_size=20, max_generations=6, patience=3),
            fitness=FitnessConfig(max_points=300),
            containment_margin=1,
            min_inside_fraction=0.95,
            containment_samples=7,
        )
    )
    handle = ServiceHandle(config=config).start()
    yield handle
    handle.stop()


def _get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


def _post(service, body: bytes) -> urllib.error.HTTPError:
    request = urllib.request.Request(
        f"{service.address}/analyze",
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=10)
    return excinfo.value


def _error_payload(http_error: urllib.error.HTTPError) -> dict:
    return json.loads(http_error.read())["error"]


class TestBadRequests:
    def test_malformed_json_is_400_with_structured_error(self, service):
        error = _post(service, b"{this is not json")
        assert error.code == 400
        payload = _error_payload(error)
        assert payload["type"] == "malformed_json"
        assert "JSON" in payload["message"]

    def test_non_object_json_is_400_not_500(self, service):
        # regression: a JSON array body used to raise TypeError inside
        # the handler (an unhandled 500 / dropped connection)
        error = _post(service, b"[1, 2, 3]")
        assert error.code == 400
        assert _error_payload(error)["type"] == "malformed_json"

    def test_undecodable_base64_is_400_with_structured_error(self, service):
        # regression: the npz/base64 decode failure must surface as a
        # structured 400, never a 500
        error = _post(service, json.dumps({"video_npz_b64": "###"}).encode())
        assert error.code == 400
        payload = _error_payload(error)
        assert payload["type"] == "bad_video_payload"
        assert payload["message"]

    def test_valid_base64_invalid_npz_is_400(self, service):
        import base64

        bogus = base64.b64encode(b"not an npz archive").decode()
        error = _post(service, json.dumps({"video_npz_b64": bogus}).encode())
        assert error.code == 400
        assert _error_payload(error)["type"] == "bad_video_payload"

    def test_missing_video_field_is_400(self, service):
        error = _post(service, b"{}")
        assert error.code == 400
        assert _error_payload(error)["type"] == "missing_field"

    def test_non_integer_seed_is_400(self, service, tiny_jump):
        from repro.service import encode_video

        body = json.dumps(
            {"video_npz_b64": encode_video(tiny_jump.video), "seed": "many"}
        ).encode()
        error = _post(service, body)
        assert error.code == 400
        assert _error_payload(error)["type"] == "bad_seed"

    def test_404_error_is_structured_too(self, service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{service.address}/nowhere", timeout=10)
        assert excinfo.value.code == 404
        assert _error_payload(excinfo.value)["type"] == "not_found"


class TestMetricsEndpoint:
    def test_metrics_shape_before_any_analysis(self):
        with ServiceHandle() as handle:
            snapshot = _get_json(f"{handle.address}/metrics")
            assert set(snapshot) == {
                "requests",
                "stages",
                "counters",
                "analyzer_cache",
                "pool",
                "jobs",
                "service",
            }
            # the /metrics request itself is only counted after serving,
            # so a fresh server reports no stage work yet
            assert snapshot["stages"] == {}
            assert snapshot["analyzer_cache"]["hits"] == 0
            assert snapshot["analyzer_cache"]["misses"] == 0
            assert snapshot["pool"]["workers"] >= 1
            assert snapshot["pool"]["in_flight"] == 0
            assert snapshot["service"]["uptime_seconds"] >= 0.0
            assert snapshot["service"]["shutting_down"] is False
            assert snapshot["service"]["watchdog_timeouts"] == 0
            assert snapshot["service"]["breaker_trips"] == 0
            assert snapshot["service"]["resumed_jobs"] == 0
            assert snapshot["service"]["tasks_cancelled_at_shutdown"] == 0

    def test_analysis_populates_cumulative_stage_timings(
        self, service, tiny_jump
    ):
        result = request_analysis(service.address, tiny_jump.video, seed=3)
        assert result["trace"]["total_seconds"] > 0.0

        snapshot = _get_json(f"{service.address}/metrics")
        stages = snapshot["stages"]
        for name in ("segmentation", "tracking", "scoring"):
            assert stages[name]["calls"] >= 1
            assert stages[name]["total_seconds"] > 0.0
        assert stages["tracking/frame"]["calls"] >= 7
        assert snapshot["counters"]["ga.evaluations"] > 0

    def test_request_counters_accumulate(self, service):
        before = _get_json(f"{service.address}/metrics")["requests"]
        _get_json(f"{service.address}/health")
        _post(service, b"{not json")  # counted as a 400
        after = _get_json(f"{service.address}/metrics")["requests"]
        assert after["total"] >= before.get("total", 0) + 2
        assert after["endpoint:/health"] >= 1
        assert after["status:400"] >= 1

    def test_errors_do_not_pollute_stage_metrics(self, tiny_jump):
        # a failed request must count as a request but record no stages
        with ServiceHandle() as handle:
            _post(handle, b"{not json")
            snapshot = _get_json(f"{handle.address}/metrics")
            assert snapshot["stages"] == {}
            assert snapshot["requests"]["status:400"] == 1


class TestScaleOutObservability:
    """`--procs` observability: pid + shm fallback counter per replica."""

    def test_metrics_expose_pid_and_shm_fallbacks(self):
        import os

        with ServiceHandle() as handle:
            snapshot = _get_json(f"{handle.address}/metrics")
            assert snapshot["service"]["pid"] == os.getpid()
            assert snapshot["service"]["shm_fallbacks"] == 0
            health = _get_json(f"{handle.address}/health")
            assert health["pid"] == os.getpid()

    def test_handle_adopts_prebound_listener(self):
        """The forked-worker plumbing: serve on a socket bound elsewhere.

        `slj serve --procs N` binds one listener, forks, and every
        child builds its HTTP server around the inherited socket; this
        exercises that adoption path in-process.
        """
        import socket

        listener = socket.create_server(("127.0.0.1", 0), backlog=8)
        port = listener.getsockname()[1]
        handle = ServiceHandle(listener=listener).start()
        try:
            assert handle.address.endswith(f":{port}")
            health = _get_json(f"http://127.0.0.1:{port}/health")
            assert health["status"] == "ok"
        finally:
            handle.stop()
