"""Tests for rasterisation primitives."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.draw import (
    draw_capsule,
    draw_disk,
    draw_line,
    draw_polygon,
    paint_mask,
    segment_distance_field,
    stick_figure_mask,
)
from repro.imaging.image import blank_mask, blank_rgb


class TestSegmentDistanceField:
    def test_point_distance(self):
        field = segment_distance_field((5, 5), (2, 2), (2, 2))
        assert field[2, 2] == 0.0
        assert field[2, 4] == pytest.approx(2.0)

    def test_segment_midline_zero(self):
        field = segment_distance_field((5, 9), (2, 1), (2, 7))
        assert np.allclose(field[2, 1:8], 0.0)
        assert field[4, 4] == pytest.approx(2.0)


class TestDrawCapsule:
    def test_disk_area(self):
        mask = blank_mask(21, 21)
        draw_disk(mask, (10, 10), 5.0)
        # Pixel-centre disk of radius 5: close to pi * 25
        assert 70 <= mask.sum() <= 90

    def test_capsule_contains_endpoints(self):
        mask = blank_mask(20, 20)
        draw_capsule(mask, (5, 5), (15, 15), 1.5)
        assert mask[5, 5] and mask[15, 15]

    def test_offscreen_clipping(self):
        mask = blank_mask(10, 10)
        draw_capsule(mask, (-20, -20), (-10, -10), 2.0)
        assert not mask.any()

    def test_partial_clip(self):
        mask = blank_mask(10, 10)
        draw_capsule(mask, (-5, 5), (5, 5), 1.0)
        assert mask[0, 5] and mask[5, 5]

    def test_negative_radius_rejected(self):
        with pytest.raises(ImageError):
            draw_capsule(blank_mask(5, 5), (1, 1), (2, 2), -1.0)

    def test_in_place_and_returns(self):
        mask = blank_mask(8, 8)
        out = draw_line(mask, (1, 1), (6, 6), thickness=1.0)
        assert out is mask and mask.any()


class TestDrawPolygon:
    def test_square(self):
        mask = blank_mask(10, 10)
        draw_polygon(mask, np.array([[2, 2], [2, 7], [7, 7], [7, 2]]))
        assert mask[4, 4]
        assert not mask[0, 0]
        assert 20 <= mask.sum() <= 36

    def test_triangle(self):
        mask = blank_mask(12, 12)
        draw_polygon(mask, np.array([[1, 1], [1, 10], [10, 1]]))
        assert mask[2, 2]
        assert not mask[9, 9]

    def test_too_few_vertices(self):
        with pytest.raises(ImageError):
            draw_polygon(blank_mask(5, 5), np.array([[0, 0], [1, 1]]))


class TestPaintMask:
    def test_full_opacity(self):
        image = blank_rgb(4, 4, (0.0, 0.0, 0.0))
        mask = blank_mask(4, 4)
        mask[1, 1] = True
        paint_mask(image, mask, (1.0, 0.5, 0.25))
        assert np.allclose(image[1, 1], (1.0, 0.5, 0.25))
        assert np.allclose(image[0, 0], 0.0)

    def test_half_opacity(self):
        image = blank_rgb(2, 2, (1.0, 1.0, 1.0))
        mask = np.ones((2, 2), dtype=bool)
        paint_mask(image, mask, (0.0, 0.0, 0.0), opacity=0.5)
        assert np.allclose(image, 0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ImageError):
            paint_mask(blank_rgb(3, 3), blank_mask(4, 4), (1, 0, 0))


class TestStickFigure:
    def test_multiple_segments(self):
        mask = stick_figure_mask(
            (20, 20), [((2, 2), (2, 18)), ((2, 10), (18, 10))], thickness=1.0
        )
        assert mask[2, 5] and mask[10, 10]
