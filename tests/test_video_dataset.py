"""Tests for the labelled synthetic-jump dataset builder."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.scoring.standards import Standard
from repro.video.synthesis.dataset import (
    SyntheticJumpConfig,
    synthesize_dataset,
    synthesize_flawed_jump,
    synthesize_jump,
)
from repro.video.synthesis.motion import JumpParameters
from repro.video.synthesis.scene import SceneConfig


class TestSyntheticJump:
    def test_shapes_consistent(self, jump):
        assert jump.num_frames == 20
        assert len(jump.person_masks) == 20
        assert len(jump.shadow_masks) == 20
        assert len(jump.motion.poses) == 20
        assert jump.video.height == jump.person_masks[0].shape[0]

    def test_person_and_shadow_disjoint(self, jump):
        for k in range(jump.num_frames):
            assert not (jump.person_masks[k] & jump.shadow_masks[k]).any()

    def test_foreground_mask_is_union(self, jump):
        fg = jump.foreground_mask(3)
        assert (fg == (jump.person_masks[3] | jump.shadow_masks[3])).all()

    def test_background_property_clean(self, jump):
        bg = jump.background
        assert bg.shape == (120, 160, 3)

    def test_person_inside_frame_every_frame(self, jump):
        for k in range(jump.num_frames):
            mask = jump.person_masks[k]
            assert mask.any()
            rows, cols = np.nonzero(mask)
            assert rows.min() > 0 and rows.max() < 119
            assert cols.min() > 0 and cols.max() < 159

    def test_deterministic_by_seed(self):
        a = synthesize_jump(SyntheticJumpConfig(seed=11))
        b = synthesize_jump(SyntheticJumpConfig(seed=11))
        assert np.array_equal(a.video.frames, b.video.frames)

    def test_ground_level_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            SyntheticJumpConfig(
                params=JumpParameters(ground_level=10.0),
                scene=SceneConfig(ground_level=12.0),
            )


class TestMotionBlurAndJitter:
    def test_blur_changes_frames_not_truth(self):
        sharp = synthesize_jump(SyntheticJumpConfig(seed=4))
        blurred = synthesize_jump(
            SyntheticJumpConfig(seed=4, motion_blur_samples=3)
        )
        assert not np.allclose(sharp.video.frames, blurred.video.frames)
        for a, b in zip(sharp.person_masks, blurred.person_masks):
            assert (a == b).all()

    def test_jitter_moves_truth_with_frames(self):
        steady = synthesize_jump(SyntheticJumpConfig(seed=4))
        shaky = synthesize_jump(SyntheticJumpConfig(seed=4, camera_jitter=2.0))
        moved = sum(
            not (a == b).all()
            for a, b in zip(steady.person_masks, shaky.person_masks)
        )
        assert moved > 10  # most frames are shifted

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SyntheticJumpConfig(motion_blur_samples=0)
        with pytest.raises(ConfigurationError):
            SyntheticJumpConfig(camera_jitter=-1.0)


class TestFlawedJumps:
    def test_flawed_jump_records_violation(self):
        jump = synthesize_flawed_jump(Standard.E5, seed=3)
        assert jump.violated == (Standard.E5,)

    def test_flawed_motion_differs(self):
        clean = synthesize_jump(SyntheticJumpConfig(seed=3))
        flawed = synthesize_flawed_jump(Standard.E1, seed=3)
        clean_angles = [p.angles_deg for p in clean.motion.poses]
        flawed_angles = [p.angles_deg for p in flawed.motion.poses]
        assert clean_angles != flawed_angles


class TestDataset:
    def test_dataset_composition(self):
        jumps = synthesize_dataset(seeds=[1], include_flawed=True)
        assert len(jumps) == 1 + 7
        assert jumps[0].violated == ()
        violated = [j.violated[0] for j in jumps[1:]]
        assert violated == list(Standard)

    def test_dataset_without_flaws(self):
        jumps = synthesize_dataset(seeds=[1, 2], include_flawed=False)
        assert len(jumps) == 2
