"""Tests for stage windows, the scorer and report rendering."""

import pytest

from repro.errors import ScoringError
from repro.scoring.phases import StageWindows
from repro.scoring.report import JumpScorer
from repro.scoring.standards import ADVICE, Standard, all_standards


class TestStageWindows:
    def test_paper_default(self):
        windows = StageWindows.paper_default()
        assert windows.initiation == (0, 10)
        assert windows.air_landing == (10, 20)

    def test_for_sequence_midpoint(self):
        windows = StageWindows.for_sequence(16)
        assert windows.initiation == (0, 8)
        assert windows.air_landing == (8, 16)

    def test_for_sequence_with_takeoff(self):
        windows = StageWindows.for_sequence(20, takeoff_frame=12)
        assert windows.initiation == (0, 12)
        assert windows.air_landing == (12, 20)

    def test_takeoff_clamped(self):
        windows = StageWindows.for_sequence(10, takeoff_frame=0)
        assert windows.initiation == (0, 1)

    def test_window_lookup(self):
        windows = StageWindows.paper_default()
        assert windows.window("initiation") == (0, 10)
        assert windows.window("air_landing") == (10, 20)
        with pytest.raises(ScoringError):
            windows.window("flight")

    def test_invalid_windows(self):
        with pytest.raises(ScoringError):
            StageWindows(initiation=(5, 3), air_landing=(10, 20))
        with pytest.raises(ScoringError):
            StageWindows.for_sequence(2)


class TestScorerAndReport:
    def _report(self, jump):
        return JumpScorer().score(
            jump.motion.poses, takeoff_frame=jump.motion.takeoff_frame
        )

    def test_clean_jump_scores_full(self, jump):
        report = self._report(jump)
        assert report.score == 1.0
        assert report.failed == ()
        assert report.advice() == []

    def test_report_renders(self, jump):
        text = self._report(jump).render_text()
        assert "R1" in text and "R7" in text
        assert "7/7" in text

    def test_flawed_report_has_advice(self):
        from repro.video.synthesis import synthesize_flawed_jump

        flawed = synthesize_flawed_jump(Standard.E2, seed=9)
        report = JumpScorer().score(
            flawed.motion.poses, takeoff_frame=flawed.motion.takeoff_frame
        )
        assert report.violated_standards == (Standard.E2,)
        assert report.advice() == [ADVICE[Standard.E2]]
        assert "FAIL" in report.render_text()
        assert "advice:" in report.render_text()

    def test_explicit_windows_override(self, jump):
        scorer = JumpScorer(StageWindows.paper_default())
        report = scorer.score(jump.motion.poses)
        assert report.windows == StageWindows.paper_default()


class TestStandards:
    def test_seven_standards_with_stages(self):
        standards = all_standards()
        assert len(standards) == 7
        assert [s.stage for s in standards[:4]] == ["initiation"] * 4
        assert [s.stage for s in standards[4:]] == ["air_landing"] * 3

    def test_advice_for_every_standard(self):
        assert set(ADVICE) == set(Standard)
        assert all(len(text) > 20 for text in ADVICE.values())
