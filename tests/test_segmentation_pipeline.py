"""Integration tests for the five-step segmentation pipeline."""

import numpy as np
import pytest

from repro.errors import SegmentationError
from repro.imaging.metrics import iou
from repro.segmentation.evaluation import evaluate_sequence, score_stages
from repro.segmentation.pipeline import SegmentationConfig, SegmentationPipeline


class TestPipeline:
    def test_requires_fit_before_background(self):
        with pytest.raises(SegmentationError):
            SegmentationPipeline().background

    def test_segments_whole_jump(self, jump):
        pipeline = SegmentationPipeline()
        segmentations = pipeline.segment_video(jump.video)
        assert len(segmentations) == jump.num_frames
        for seg in segmentations:
            assert seg.person.any()

    def test_silhouette_quality(self, jump):
        pipeline = SegmentationPipeline()
        silhouettes = pipeline.silhouettes(jump.video)
        scores = [
            iou(sil, jump.person_masks[k]) for k, sil in enumerate(silhouettes)
        ]
        assert float(np.mean(scores)) > 0.9
        assert min(scores) > 0.75

    def test_shadow_pixels_removed(self, jump):
        pipeline = SegmentationPipeline()
        segmentations = pipeline.segment_video(jump.video)
        evaluation = evaluate_sequence(segmentations, jump, pipeline.background)
        assert evaluation.mean_shadow_leakage < 0.05
        assert evaluation.mean_shadow_discrimination > 0.95

    def test_without_shadow_removal_silhouette_dirtier(self, jump):
        with_config = SegmentationPipeline()
        without_config = SegmentationPipeline(
            SegmentationConfig(remove_shadows=False)
        )
        sil_with = with_config.silhouettes(jump.video)
        sil_without = without_config.silhouettes(jump.video)
        k = 15  # well-separated flight frame
        assert iou(sil_with[k], jump.person_masks[k]) > iou(
            sil_without[k], jump.person_masks[k]
        )

    def test_median_background_option(self, jump):
        pipeline = SegmentationPipeline(
            SegmentationConfig(use_median_background=True)
        )
        silhouettes = pipeline.silhouettes(jump.video)
        assert silhouettes[10].any()

    def test_stage_masks_nested(self, jump):
        pipeline = SegmentationPipeline()
        pipeline.fit(jump.video)
        seg = pipeline.segment(jump.video[12])
        # spot removal only removes, hole fill only adds
        assert not (seg.after_spot_removal & ~seg.after_noise_removal).any()
        assert (seg.after_hole_fill | ~seg.after_spot_removal).all()


class TestEvaluationHelpers:
    def test_score_stages_f1_keys(self, jump):
        pipeline = SegmentationPipeline()
        segmentations = pipeline.segment_video(jump.video)
        scores = score_stages(segmentations[5], jump, 5)
        f1 = scores.f1_by_stage()
        assert set(f1) == {
            "raw_foreground",
            "after_noise_removal",
            "after_spot_removal",
            "after_hole_fill",
            "person",
        }
        assert all(0.0 <= v <= 1.0 for v in f1.values())

    def test_sequence_evaluation_lengths(self, jump):
        pipeline = SegmentationPipeline()
        segmentations = pipeline.segment_video(jump.video)
        evaluation = evaluate_sequence(segmentations, jump, pipeline.background)
        assert len(evaluation.person_iou) == jump.num_frames
        assert len(evaluation.shadow_detection) == jump.num_frames
        assert evaluation.background_rmse < 0.06

    def test_mismatched_lengths_rejected(self, jump):
        pipeline = SegmentationPipeline()
        segmentations = pipeline.segment_video(jump.video)
        with pytest.raises(ValueError):
            evaluate_sequence(segmentations[:-1], jump, pipeline.background)


class TestMultiComponentCandidates:
    """``max_components > 1``: per-component candidates + reject metrics."""

    def test_candidates_empty_in_single_mode(self, jump):
        pipeline = SegmentationPipeline()
        seg = pipeline.segment_video(jump.video)[10]
        assert seg.candidates == ()

    def test_candidates_union_is_person(self, jump):
        pipeline = SegmentationPipeline(
            SegmentationConfig(max_components=3, min_component_area=40)
        )
        for seg in pipeline.segment_video(jump.video):
            union = np.zeros_like(seg.person)
            for candidate in seg.candidates:
                union |= candidate
            assert np.array_equal(union, seg.person)

    def test_candidates_area_ordered(self, jump):
        pipeline = SegmentationPipeline(
            SegmentationConfig(max_components=3, min_component_area=40)
        )
        seg = pipeline.segment_video(jump.video)[10]
        areas = [int(c.sum()) for c in seg.candidates]
        assert areas == sorted(areas, reverse=True)
        assert areas and areas[0] >= 40

    def test_rejected_components_counted(self, jump):
        from repro.runtime import Instrumentation

        # An absurd area floor rejects every component: the drop is an
        # observable metric, never a silent truncation.
        instrumentation = Instrumentation()
        pipeline = SegmentationPipeline(
            SegmentationConfig(max_components=2, min_component_area=100_000),
            instrumentation=instrumentation,
        )
        segmentations = pipeline.segment_video(jump.video)
        assert all(seg.candidates == () for seg in segmentations)
        assert instrumentation.counter("segmentation.components_total") > 0
        assert instrumentation.counter(
            "segmentation.components_rejected"
        ) == instrumentation.counter("segmentation.components_total")
        assert instrumentation.counter("segmentation.rejected_area") > 0

    def test_rejected_metrics_zero_when_all_kept(self, jump):
        from repro.runtime import Instrumentation

        instrumentation = Instrumentation()
        pipeline = SegmentationPipeline(
            SegmentationConfig(max_components=10_000, min_component_area=1),
            instrumentation=instrumentation,
        )
        pipeline.segment_video(jump.video)
        assert instrumentation.counter("segmentation.components_rejected") == 0
        assert instrumentation.counter("segmentation.rejected_area") == 0

    def test_single_mode_metrics_still_emitted(self, jump):
        from repro.runtime import Instrumentation

        instrumentation = Instrumentation()
        pipeline = SegmentationPipeline(
            SegmentationConfig(), instrumentation=instrumentation
        )
        pipeline.segment_video(jump.video)
        assert instrumentation.counter("segmentation.components_total") > 0
