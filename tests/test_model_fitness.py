"""Tests for the Eq. 3 silhouette fitness and thickness estimation."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.fitness import FitnessConfig, SilhouetteFitness, estimate_thicknesses
from repro.model.pose import StickPose
from repro.model.sticks import default_body
from repro.video.synthesis.render import person_mask_for_pose

BODY = default_body(60.0)
SHAPE = (120, 160)


def _standing_setup():
    pose = StickPose.standing(60.0, 50.0)
    mask = person_mask_for_pose(pose, BODY, SHAPE)
    return pose, mask


class TestSilhouetteFitness:
    def test_true_pose_scores_low(self):
        pose, mask = _standing_setup()
        fitness = SilhouetteFitness(mask, BODY)
        assert fitness.evaluate_pose(pose) < 0.35

    def test_true_pose_beats_shifted(self):
        pose, mask = _standing_setup()
        fitness = SilhouetteFitness(mask, BODY)
        shifted = pose.translated(15.0, 0.0)
        assert fitness.evaluate_pose(pose) < fitness.evaluate_pose(shifted)

    def test_true_pose_beats_wrong_legs(self):
        pose, mask = _standing_setup()
        fitness = SilhouetteFitness(mask, BODY)
        wrong = pose.with_angle("thigh", 90.0).with_angle("shank", 90.0)
        assert fitness.evaluate_pose(pose) < fitness.evaluate_pose(wrong)

    def test_batch_matches_single(self, rng):
        pose, mask = _standing_setup()
        fitness = SilhouetteFitness(mask, BODY)
        genes = np.stack([pose.to_genes() + rng.normal(0, 2, 10) for _ in range(6)])
        batch = fitness.evaluate(genes)
        singles = np.array([fitness.evaluate(genes[i]) for i in range(6)])
        assert np.allclose(batch, singles)

    def test_scale_invariance_of_units(self):
        # Fitness is normalised by thickness, so doubling the body and
        # silhouette roughly preserves the score of the true pose.
        pose, mask = _standing_setup()
        small = SilhouetteFitness(mask, BODY).evaluate_pose(pose)
        big_body = default_body(120.0)
        big_pose = StickPose.standing(80.0, 80.0)
        big_mask = person_mask_for_pose(big_pose, big_body, (240, 320))
        big = SilhouetteFitness(big_mask, big_body).evaluate_pose(big_pose)
        assert big == pytest.approx(small, abs=0.08)

    def test_empty_silhouette_rejected(self):
        with pytest.raises(ModelError):
            SilhouetteFitness(np.zeros((10, 10), dtype=bool), BODY)

    def test_subsampling_cap(self):
        pose, mask = _standing_setup()
        fitness = SilhouetteFitness(mask, BODY, FitnessConfig(max_points=100))
        assert fitness.num_points == 100
        assert fitness.total_points == int(mask.sum())
        # Score should be close to the uncapped one.
        full = SilhouetteFitness(mask, BODY, FitnessConfig(max_points=0))
        assert fitness.evaluate_pose(pose) == pytest.approx(
            full.evaluate_pose(pose), abs=0.05
        )

    def test_per_stick_coverage_sums_to_one(self):
        pose, mask = _standing_setup()
        fitness = SilhouetteFitness(mask, BODY)
        coverage = fitness.per_stick_coverage(pose)
        assert coverage.sum() == pytest.approx(1.0)
        assert coverage[0] > 0  # the trunk claims points


class TestThicknessEstimation:
    def test_recovers_render_thickness(self):
        pose, mask = _standing_setup()
        estimated = estimate_thicknesses(mask, pose, BODY)
        true = np.asarray(BODY.thicknesses)
        # The estimator works from assigned-point statistics; expect the
        # big parts (trunk, thigh, head) within ~40%.
        for stick in (0, 3, 4):
            assert estimated[stick] == pytest.approx(true[stick], rel=0.4)

    def test_floor_applied(self):
        pose, mask = _standing_setup()
        estimated = estimate_thicknesses(mask, pose, BODY, floor=5.0)
        prior = np.asarray(BODY.thicknesses)
        # Every re-estimated value respects the floor; sticks that
        # attracted no points keep their prior thickness unchanged.
        changed = ~np.isclose(estimated, prior)
        assert (estimated[changed] >= 5.0).all()
        assert changed.any()

    def test_empty_mask_rejected(self):
        with pytest.raises(ModelError):
            estimate_thicknesses(
                np.zeros((5, 5), dtype=bool), StickPose.standing(0, 0), BODY
            )
