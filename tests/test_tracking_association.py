"""Tests for IoU data association (greedy and Hungarian matching)."""

import numpy as np
import pytest

from repro.errors import TrackingError
from repro.tracking.association import (
    ASSOCIATION_METHODS,
    associate,
    box_iou,
    greedy_match,
    hungarian_match,
    iou_matrix,
)
from repro.types import BoundingBox


def box(row_min, col_min, row_max, col_max):
    return BoundingBox(row_min, col_min, row_max, col_max)


class TestBoxIoU:
    def test_identical_boxes(self):
        b = box(0, 0, 9, 9)
        assert box_iou(b, b) == 1.0

    def test_disjoint_boxes(self):
        assert box_iou(box(0, 0, 4, 4), box(10, 10, 14, 14)) == 0.0

    def test_known_overlap(self):
        # 10x10 boxes offset by 5 rows: overlap 50, union 150.
        a = box(0, 0, 9, 9)
        b = box(5, 0, 14, 9)
        assert box_iou(a, b) == pytest.approx(50 / 150)

    def test_none_is_zero(self):
        assert box_iou(None, box(0, 0, 4, 4)) == 0.0
        assert box_iou(box(0, 0, 4, 4), None) == 0.0
        assert box_iou(None, None) == 0.0

    def test_symmetric(self):
        a = box(2, 3, 11, 12)
        b = box(5, 5, 20, 9)
        assert box_iou(a, b) == box_iou(b, a)


class TestIoUMatrix:
    def test_shape_and_values(self):
        rows = [box(0, 0, 9, 9), None]
        cols = [box(0, 0, 9, 9), box(20, 20, 29, 29), None]
        matrix = iou_matrix(rows, cols)
        assert matrix.shape == (2, 3)
        assert matrix[0, 0] == 1.0
        assert matrix[0, 1] == 0.0
        assert (matrix[1, :] == 0.0).all()
        assert (matrix[:, 2] == 0.0).all()

    def test_empty(self):
        assert iou_matrix([], []).shape == (0, 0)


class TestGreedyMatch:
    def test_takes_best_pair_first(self):
        matrix = np.array([[0.9, 0.5], [0.5, 0.8]])
        assert sorted(greedy_match(matrix, 0.1)) == [(0, 0), (1, 1)]

    def test_threshold_rejects(self):
        matrix = np.array([[0.05]])
        assert greedy_match(matrix, 0.1) == []

    def test_tie_breaks_to_lowest_row_col(self):
        matrix = np.full((2, 2), 0.5)
        matches = greedy_match(matrix, 0.1)
        assert matches[0] == (0, 0)
        assert sorted(matches) == [(0, 0), (1, 1)]

    def test_each_row_and_col_used_once(self):
        matrix = np.array([[0.9, 0.8], [0.85, 0.1]])
        matches = greedy_match(matrix, 0.2)
        rows = [r for r, _ in matches]
        cols = [c for _, c in matches]
        assert len(rows) == len(set(rows))
        assert len(cols) == len(set(cols))

    def test_empty_matrix(self):
        assert greedy_match(np.zeros((0, 0)), 0.1) == []


class TestHungarianMatch:
    def test_optimal_where_greedy_is_not(self):
        # Greedy grabs (0, 0) = 0.5, leaving (1, 1) = 0.05 below the
        # threshold: one match.  The optimal assignment takes the two
        # 0.4 pairs instead: two matches.
        matrix = np.array([[0.5, 0.4], [0.4, 0.05]])
        assert len(greedy_match(matrix, 0.1)) == 1
        assert sorted(hungarian_match(matrix, 0.1)) == [(0, 1), (1, 0)]

    def test_threshold_applied_after_solving(self):
        matrix = np.array([[0.05, 0.0], [0.0, 0.05]])
        assert hungarian_match(matrix, 0.1) == []

    def test_agrees_with_greedy_on_dominant_diagonal(self):
        # One clearly best candidate per track: both matchers must find
        # the same (unique) optimal assignment.
        matrix = np.array(
            [
                [0.9, 0.1, 0.05],
                [0.1, 0.8, 0.1],
                [0.05, 0.1, 0.7],
            ]
        )
        expected = [(0, 0), (1, 1), (2, 2)]
        assert sorted(greedy_match(matrix, 0.2)) == expected
        assert sorted(hungarian_match(matrix, 0.2)) == expected

    def test_empty_matrix(self):
        assert hungarian_match(np.zeros((0, 2)), 0.1) == []


class TestAssociate:
    def test_result_partitions_rows_and_cols(self):
        tracks = [box(0, 0, 9, 9), box(30, 30, 39, 39)]
        candidates = [box(1, 1, 10, 10), box(50, 50, 59, 59)]
        result = associate(tracks, candidates)
        assert result.matches == ((0, 0),)
        assert result.unmatched_rows == (1,)
        assert result.unmatched_cols == (1,)

    def test_matches_sorted(self):
        tracks = [box(30, 30, 39, 39), box(0, 0, 9, 9)]
        candidates = [box(0, 0, 9, 9), box(30, 30, 39, 39)]
        result = associate(tracks, candidates)
        assert result.matches == ((0, 1), (1, 0))

    @pytest.mark.parametrize("method", ASSOCIATION_METHODS)
    def test_methods_accepted(self, method):
        result = associate([box(0, 0, 9, 9)], [box(0, 0, 9, 9)], method=method)
        assert result.matches == ((0, 0),)

    def test_unknown_method_raises(self):
        with pytest.raises(TrackingError, match="unknown association method"):
            associate([], [], method="nearest")

    def test_empty_inputs(self):
        result = associate([], [])
        assert result.matches == ()
        assert result.unmatched_rows == ()
        assert result.unmatched_cols == ()

    def test_none_boxes_never_match(self):
        result = associate([None], [box(0, 0, 9, 9)])
        assert result.matches == ()
        assert result.unmatched_rows == (0,)
        assert result.unmatched_cols == (0,)

    def test_deterministic(self):
        tracks = [box(0, 0, 9, 9), box(5, 5, 14, 14)]
        candidates = [box(4, 4, 13, 13), box(1, 1, 10, 10)]
        first = associate(tracks, candidates)
        second = associate(tracks, candidates)
        assert first == second
