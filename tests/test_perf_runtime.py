"""Tests for the perf runtime pieces: executors, cache, bench, merging."""

import dataclasses
import threading

import pytest

from repro.errors import ConfigurationError
from repro.perf.bench import compare_to_baseline, run_bench
from repro.perf.cache import AnalyzerCache
from repro.perf import executors
from repro.perf.executors import BACKENDS, ParallelConfig, parallel_map
from repro.pipeline import AnalyzerConfig
from repro.runtime import Instrumentation


def _square(value):
    """Module-level so the processes backend can pickle it."""
    return value * value


def _boom(value):
    raise ValueError(f"worker refused item {value}")


_WORKER_OFFSET = 0


def _install_offset(offset):
    global _WORKER_OFFSET
    _WORKER_OFFSET = offset


def _add_offset(value):
    return value + _WORKER_OFFSET


class TestParallelConfig:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="backend"):
            ParallelConfig(backend="fibers")

    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError, match="workers"):
            ParallelConfig(workers=0)

    def test_pool_size_never_exceeds_items(self):
        config = ParallelConfig(
            backend="threads", workers=8, oversubscribe=True
        )
        assert config.pool_size(3) == 3
        assert config.pool_size(100) == 8

    def test_pool_size_capped_at_available_cpus(self, monkeypatch):
        monkeypatch.setattr(executors, "available_cpus", lambda: 2)
        config = ParallelConfig(backend="threads", workers=8)
        assert config.pool_size(100) == 2
        # oversubscribe is the explicit escape hatch (benches, tests
        # that must exercise a real pool regardless of the host).
        forced = ParallelConfig(
            backend="threads", workers=8, oversubscribe=True
        )
        assert forced.pool_size(100) == 8

    def test_serial_detection(self):
        assert ParallelConfig().is_serial
        assert ParallelConfig(backend="threads", workers=1).is_serial
        assert not ParallelConfig(backend="threads", workers=2).is_serial


class TestParallelMap:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_preserves_input_order(self, backend):
        config = ParallelConfig(backend=backend, workers=3)
        items = list(range(23))
        assert parallel_map(_square, items, config) == [i * i for i in items]

    @pytest.mark.parametrize("backend", ("serial", "threads"))
    def test_worker_exception_propagates(self, backend):
        config = ParallelConfig(backend=backend, workers=2)
        with pytest.raises(ValueError, match="refused item"):
            parallel_map(_boom, [1, 2, 3], config)

    def test_initializer_runs_in_process_when_serial(self):
        out = parallel_map(
            _add_offset,
            [1, 2],
            ParallelConfig(),
            initializer=_install_offset,
            initargs=(100,),
        )
        assert out == [101, 102]

    def test_initializer_reaches_process_workers(self):
        out = parallel_map(
            _add_offset,
            list(range(6)),
            ParallelConfig(backend="processes", workers=2),
            initializer=_install_offset,
            initargs=(1000,),
        )
        assert out == [1000 + i for i in range(6)]


class TestInstrumentationMerge:
    def test_merge_folds_spans_calls_and_counters(self):
        parent = Instrumentation()
        with parent.span("shared"):
            pass
        parent.count("frames", 2)

        worker = Instrumentation()
        with worker.span("shared"):
            pass
        with worker.span("worker_only"):
            pass
        worker.count("frames", 3)
        worker.count("pixels", 10)

        parent.merge(worker)
        timings = {t.name: t for t in parent.timings()}
        assert timings["shared"].calls == 2
        assert timings["worker_only"].calls == 1
        assert parent.counter("frames") == 5
        assert parent.counter("pixels") == 10
        assert parent.seconds("shared") >= timings["worker_only"].seconds * 0

    def test_parallel_segmentation_keeps_sub_spans(self):
        from repro.segmentation.pipeline import SegmentationPipeline
        from repro.video.synthesis import (
            JumpParameters,
            SyntheticJumpConfig,
            synthesize_jump,
        )

        jump = synthesize_jump(
            SyntheticJumpConfig(seed=1, params=JumpParameters(num_frames=5))
        )
        instrumentation = Instrumentation()
        pipeline = SegmentationPipeline(
            instrumentation=instrumentation,
            parallel=ParallelConfig(backend="threads", workers=2),
        )
        pipeline.segment_video(jump.video)
        names = {t.name for t in instrumentation.timings()}
        assert "segmentation/subtract" in names
        assert "segmentation/parallel_frames" in names
        assert instrumentation.counter("segmentation.frames") == 5


class TestAnalyzerCache:
    def _config(self, max_points=1500):
        base = AnalyzerConfig()
        return dataclasses.replace(
            base,
            tracker=dataclasses.replace(
                base.tracker,
                fitness=dataclasses.replace(
                    base.tracker.fitness, max_points=max_points
                ),
            ),
        )

    def test_hit_miss_and_identity(self):
        built = []

        def factory(config):
            built.append(config)
            return object()

        cache = AnalyzerCache(factory, capacity=4)
        first = cache.get(self._config())
        second = cache.get(self._config())
        assert first is second
        assert len(built) == 1
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_eviction_at_capacity(self):
        cache = AnalyzerCache(lambda config: object(), capacity=2)
        a = cache.get(self._config(100))
        cache.get(self._config(200))
        cache.get(self._config(300))  # evicts the 100-point entry
        stats = cache.stats()
        assert stats["evictions"] == 1 and stats["size"] == 2
        assert cache.get(self._config(100)) is not a  # rebuilt

    def test_parallel_block_separates_entries(self):
        """Same config hash, different backend: distinct cache slots."""
        cache = AnalyzerCache(lambda config: object(), capacity=4)
        serial = self._config()
        threaded = dataclasses.replace(
            serial, parallel=ParallelConfig(backend="threads", workers=4)
        )
        assert cache.key_for(serial) != cache.key_for(threaded)
        assert cache.get(serial) is not cache.get(threaded)

    def test_concurrent_gets_share_one_instance(self):
        cache = AnalyzerCache(lambda config: object(), capacity=2)
        config = self._config()
        seen = []

        def worker():
            seen.append(cache.get(config))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(entry) for entry in seen}) == 1

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            AnalyzerCache(lambda config: object(), capacity=0)


class TestBenchHarness:
    @pytest.fixture(scope="class")
    def quick_report(self):
        return run_bench(frames=4, workers=2, seed=3, quick=True)

    def test_quick_report_shape(self, quick_report):
        assert quick_report["bench_version"] >= 1
        assert quick_report["config_hash"]
        sections = quick_report["sections"]
        assert set(sections["segmentation"]["backends"]) == {"serial", "threads"}
        assert sections["ga_single_frame"]["identical_best"] is True
        assert sections["end_to_end"]["baseline"]["seconds"] > 0
        assert sections["end_to_end"]["optimized"]["seconds"] > 0
        assert sections["end_to_end"]["speedup"] > 0
        ttfr = sections["time_to_first_result"]
        assert ttfr["warmup_frames"] >= 2
        assert ttfr["first_result_seconds"] > 0
        assert ttfr["ratio_vs_batch"] > 0
        fitness_batch = sections["fitness_batch"]
        assert fitness_batch["identical_values"] is True
        assert fitness_batch["batched"]["evaluations_per_sec"] > 0
        scale_out = sections["scale_out"]
        assert scale_out["available_cpus"] >= 1
        assert scale_out["dispatch"]["tasks"] > 0
        for entry in scale_out["sizes"]:
            assert entry["payload"]["payload_reduction"] >= 50
            assert entry["serial"]["frames_per_sec"] > 0

    def test_report_is_json_ready(self, quick_report):
        import json

        json.dumps(quick_report)

    def test_gate_accepts_itself(self, quick_report):
        ok, message = compare_to_baseline(quick_report, quick_report)
        assert ok
        assert "frames/sec" in message

    def test_gate_rejects_big_regression(self, quick_report):
        inflated = {
            "sections": {
                "end_to_end": {
                    "optimized": {
                        "frames_per_sec": quick_report["sections"]["end_to_end"][
                            "optimized"
                        ]["frames_per_sec"]
                        * 10.0
                    }
                }
            }
        }
        ok, _ = compare_to_baseline(quick_report, inflated, max_regression=2.0)
        assert not ok

    def test_gate_reports_malformed_baseline(self, quick_report):
        ok, message = compare_to_baseline(quick_report, {"sections": {}})
        assert not ok
        assert "baseline" in message

    def test_committed_bench_file_is_current_schema(self):
        import json
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "BENCH_4.json"
        committed = json.loads(path.read_text())
        assert committed["bench_version"] == 1
        end_to_end = committed["sections"]["end_to_end"]
        # The PR-4 acceptance floor: >= 2x end-to-end speedup.
        assert end_to_end["speedup"] >= 2.0
        assert end_to_end["optimized"]["frames_per_sec"] > 0

    def test_committed_bench_6_shows_streaming_latency_win(self):
        import json
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "BENCH_6.json"
        committed = json.loads(path.read_text())
        assert committed["bench_version"] == 1
        assert committed["sections"]["end_to_end"]["speedup"] >= 2.0
        ttfr = committed["sections"]["time_to_first_result"]
        # The PR-6 acceptance floor: a live stream's first tracked
        # result lands in < 0.25x the batch end-to-end latency.
        assert ttfr["warmup_frames"] >= 2
        assert ttfr["ratio_vs_batch"] < 0.25

    def test_committed_bench_9_shows_scale_out_wins(self):
        import json
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "BENCH_9.json"
        committed = json.loads(path.read_text())
        assert committed["bench_version"] == 1
        assert committed["sections"]["end_to_end"]["speedup"] >= 2.0
        scale_out = committed["sections"]["scale_out"]
        assert scale_out["sizes"], "scale_out must carry size entries"
        for entry in scale_out["sizes"]:
            # The PR-9 acceptance floors: descriptors shrink the
            # per-task payload >= 50x, and the processes backend (CPU
            # cap included) keeps up with the serial loop.
            assert entry["payload"]["payload_reduction"] >= 50
            assert entry["processes_vs_serial"] >= 1.0
        fitness_batch = committed["sections"]["fitness_batch"]
        assert fitness_batch["identical_values"] is True
        assert fitness_batch["batch_speedup"] > 1.0
