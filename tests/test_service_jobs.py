"""HTTP tests for the asynchronous job API (``/v1/jobs``)."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np

from repro.jobs import JobsConfig, JobStore
from repro.pipeline import AnalyzerConfig
from repro.service import ServiceConfig, ServiceHandle, encode_video


def _request(method, url, body=None):
    """One request; returns (status, payload, headers) without raising."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"},
        method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


class _ScriptedAnalyzer:
    """Deterministic stand-in for JumpAnalyzer with the real stage names."""

    STAGES = ("segmentation", "tracking", "scoring")

    def __init__(self, error=None, barrier=None, started=None):
        self.config = AnalyzerConfig()
        self.error = error
        self.barrier = barrier
        self.started = started

    def analyze(self, video, annotation=None, rng=None,
                instrumentation=None, cancel_token=None):
        if self.started is not None:
            self.started.set()
        for stage in self.STAGES:
            if cancel_token is not None:
                cancel_token.raise_if_cancelled(stage)
            if instrumentation is not None:
                instrumentation.event("runtime/stage_start", stage=stage)
                with instrumentation.span(stage):
                    pass
            if self.barrier is not None:
                self.barrier.wait(timeout=10)
        if self.error is not None:
            raise self.error
        return {"stub": True}


def _stub_handle(analyzer, jobs=None, service_config=None):
    """A running service whose analyzer and job serializer are scripted."""
    config = service_config or ServiceConfig(jobs=jobs or JobsConfig())
    handle = ServiceHandle(service_config=config)
    handle._server.analyzer = analyzer
    handle.jobs.workers._serializer = lambda analysis: {
        "stub": True,
        "degraded": False,
    }
    return handle.start()


def _tiny_video_b64():
    from repro.video.sequence import VideoSequence

    frames = np.zeros((2, 8, 8, 3), dtype=np.uint8)
    return encode_video(VideoSequence(frames))


def _submit(address, seed=0):
    return _request(
        "POST",
        f"{address}/v1/jobs",
        {"video_npz_b64": _tiny_video_b64(), "seed": seed},
    )


def _poll_terminal(address, job_id, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload, _ = _request("GET", f"{address}/v1/jobs/{job_id}")
        assert status == 200
        if payload["job"]["state"] in ("succeeded", "failed", "cancelled"):
            return payload["job"]
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} never became terminal")


class TestSubmission:
    def test_202_with_location_before_completion(self):
        barrier = threading.Event()
        handle = _stub_handle(_ScriptedAnalyzer(barrier=barrier))
        try:
            status, payload, headers = _submit(handle.address, seed=3)
            assert status == 202
            job = payload["job"]
            assert headers["Location"] == f"/v1/jobs/{job['id']}"
            # the job is answered before the analysis finished
            assert job["state"] in ("submitted", "running")
            assert job["seed"] == 3
            barrier.set()
            final = _poll_terminal(handle.address, job["id"])
            assert final["state"] == "succeeded"
            assert final["progress"]["fraction"] == 1.0
            assert final["progress"]["stages_completed"] == list(
                _ScriptedAnalyzer.STAGES
            )
        finally:
            handle.stop()

    def test_submission_ids_are_deterministic(self):
        for _ in range(2):
            handle = _stub_handle(_ScriptedAnalyzer())
            try:
                _, payload, _ = _submit(handle.address, seed=9)
                assert payload["job"]["id"].startswith("j00001-")
                digest_part = payload["job"]["id"].split("-", 1)[1]
            finally:
                handle.stop()
        assert len(digest_part) == 10

    def test_missing_video_is_400(self):
        handle = _stub_handle(_ScriptedAnalyzer())
        try:
            status, payload, _ = _request(
                "POST", f"{handle.address}/v1/jobs", {"seed": 1}
            )
            assert status == 400
            assert payload["error"]["type"] == "missing_field"
            assert set(payload["error"]) == {"type", "message", "detail"}
        finally:
            handle.stop()

    def test_queue_full_is_503_with_retry_after(self):
        barrier = threading.Event()
        started = threading.Event()
        handle = _stub_handle(
            _ScriptedAnalyzer(barrier=barrier, started=started),
            jobs=JobsConfig(max_queued=1),
        )
        try:
            status, _, _ = _submit(handle.address)
            assert status == 202
            assert started.wait(timeout=10)
            status, payload, headers = _submit(handle.address)
            assert status == 503
            assert payload["error"]["type"] == "jobs_queue_full"
            assert "Retry-After" in headers
            barrier.set()
        finally:
            handle.stop()

    def test_disabled_jobs_api_is_503(self):
        handle = _stub_handle(
            _ScriptedAnalyzer(), jobs=JobsConfig(enabled=False)
        )
        try:
            status, payload, _ = _submit(handle.address)
            assert status == 503
            assert payload["error"]["type"] == "jobs_disabled"
            status, payload, _ = _request("GET", f"{handle.address}/v1/jobs")
            assert status == 503
        finally:
            handle.stop()


class TestStatusAndResult:
    def test_unknown_job_is_404(self):
        handle = _stub_handle(_ScriptedAnalyzer())
        try:
            status, payload, _ = _request(
                "GET", f"{handle.address}/v1/jobs/j99999-0000000000"
            )
            assert status == 404
            assert payload["error"]["type"] == "job_not_found"
        finally:
            handle.stop()

    def test_result_conflict_while_running(self):
        barrier = threading.Event()
        started = threading.Event()
        handle = _stub_handle(
            _ScriptedAnalyzer(barrier=barrier, started=started)
        )
        try:
            _, payload, _ = _submit(handle.address)
            job_id = payload["job"]["id"]
            assert started.wait(timeout=10)
            status, payload, _ = _request(
                "GET", f"{handle.address}/v1/jobs/{job_id}/result"
            )
            assert status == 409
            assert payload["error"]["type"] == "job_not_finished"
            assert payload["error"]["detail"]["state"] == "running"
            barrier.set()
            _poll_terminal(handle.address, job_id)
            status, payload, _ = _request(
                "GET", f"{handle.address}/v1/jobs/{job_id}/result"
            )
            assert status == 200
            assert payload["analysis"] == {"stub": True, "degraded": False}
            assert payload["job"]["state"] == "succeeded"
        finally:
            handle.stop()

    def test_failed_job_result_is_409_with_detail(self):
        from repro.errors import TrackingError

        handle = _stub_handle(
            _ScriptedAnalyzer(error=TrackingError("lost the jumper"))
        )
        try:
            _, payload, _ = _submit(handle.address)
            job_id = payload["job"]["id"]
            final = _poll_terminal(handle.address, job_id)
            assert final["state"] == "failed"
            status, payload, _ = _request(
                "GET", f"{handle.address}/v1/jobs/{job_id}/result"
            )
            assert status == 409
            assert payload["error"]["type"] == "job_failed"
            assert payload["error"]["detail"]["type"] == "TrackingError"
        finally:
            handle.stop()

    def test_expired_result_is_410(self):
        handle = _stub_handle(
            _ScriptedAnalyzer(), jobs=JobsConfig(result_ttl_seconds=0.05)
        )
        try:
            _, payload, _ = _submit(handle.address)
            job_id = payload["job"]["id"]
            _poll_terminal(handle.address, job_id)
            time.sleep(0.1)
            status, payload, _ = _request(
                "GET", f"{handle.address}/v1/jobs/{job_id}/result"
            )
            assert status == 410
            assert payload["error"]["type"] == "result_expired"
            status, payload, _ = _request(
                "GET", f"{handle.address}/v1/jobs/{job_id}"
            )
            assert status == 410
        finally:
            handle.stop()


class TestCancellation:
    def test_cancel_mid_run_without_poisoning_the_pool(self):
        barrier = threading.Event()
        started = threading.Event()
        handle = _stub_handle(
            _ScriptedAnalyzer(barrier=barrier, started=started)
        )
        try:
            _, payload, _ = _submit(handle.address)
            job_id = payload["job"]["id"]
            assert started.wait(timeout=10)
            status, payload, _ = _request(
                "DELETE", f"{handle.address}/v1/jobs/{job_id}"
            )
            assert status == 202
            assert payload["cancel"] == "cancelling"
            barrier.set()
            final = _poll_terminal(handle.address, job_id)
            assert final["state"] == "cancelled"
            assert final["error"]["type"] == "CancelledError"

            # a fresh job on the same (shared) pool still succeeds
            status, payload, _ = _submit(handle.address, seed=5)
            assert status == 202
            follow_up = _poll_terminal(handle.address, payload["job"]["id"])
            assert follow_up["state"] == "succeeded"
        finally:
            handle.stop()

    def test_cancel_of_terminal_job_is_idempotent(self):
        handle = _stub_handle(_ScriptedAnalyzer())
        try:
            _, payload, _ = _submit(handle.address)
            job_id = payload["job"]["id"]
            _poll_terminal(handle.address, job_id)
            status, payload, _ = _request(
                "DELETE", f"{handle.address}/v1/jobs/{job_id}"
            )
            assert status == 200
            assert payload["cancel"] == "finished"
            assert payload["job"]["state"] == "succeeded"
        finally:
            handle.stop()

    def test_cancel_unknown_job_is_404(self):
        handle = _stub_handle(_ScriptedAnalyzer())
        try:
            status, payload, _ = _request(
                "DELETE", f"{handle.address}/v1/jobs/j99999-0000000000"
            )
            assert status == 404
            assert payload["error"]["type"] == "job_not_found"
        finally:
            handle.stop()


class TestListingAndMetrics:
    def test_listing_is_bounded_and_filterable(self):
        handle = _stub_handle(_ScriptedAnalyzer())
        try:
            ids = []
            for seed in range(3):
                _, payload, _ = _submit(handle.address, seed=seed)
                ids.append(payload["job"]["id"])
                _poll_terminal(handle.address, ids[-1])
            status, payload, _ = _request(
                "GET", f"{handle.address}/v1/jobs?limit=2"
            )
            assert status == 200
            assert payload["count"] == 2
            assert [j["id"] for j in payload["jobs"]] == ids[:0:-1]
            status, payload, _ = _request(
                "GET", f"{handle.address}/v1/jobs?state=succeeded"
            )
            assert payload["count"] == 3
            status, payload, _ = _request(
                "GET", f"{handle.address}/v1/jobs?state=bogus"
            )
            assert status == 400
            assert payload["error"]["type"] == "bad_state"
            status, payload, _ = _request(
                "GET", f"{handle.address}/v1/jobs?limit=0"
            )
            assert status == 400
            assert payload["error"]["type"] == "bad_limit"
        finally:
            handle.stop()

    def test_metrics_exposes_job_counters(self):
        handle = _stub_handle(_ScriptedAnalyzer())
        try:
            _, payload, _ = _submit(handle.address)
            _poll_terminal(handle.address, payload["job"]["id"])
            status, snapshot, _ = _request(
                "GET", f"{handle.address}/v1/metrics"
            )
            assert status == 200
            jobs = snapshot["jobs"]
            assert jobs["states"]["succeeded"] == 1
            assert jobs["created"] == 1
            assert jobs["enabled"] is True
            assert snapshot["counters"]["service.jobs.submitted"] == 1
            assert snapshot["pool"]["submitted"] >= 1
        finally:
            handle.stop()


class TestPersistence:
    def test_result_survives_a_service_restart(self, tmp_path):
        persist = tmp_path / "jobs.json"
        jobs_config = JobsConfig(persist_path=str(persist))
        handle = _stub_handle(_ScriptedAnalyzer(), jobs=jobs_config)
        try:
            _, payload, _ = _submit(handle.address, seed=11)
            job_id = payload["job"]["id"]
            _poll_terminal(handle.address, job_id)
        finally:
            handle.stop()

        # a second service over the same file serves the old result
        handle = _stub_handle(_ScriptedAnalyzer(), jobs=jobs_config)
        try:
            status, payload, _ = _request(
                "GET", f"{handle.address}/v1/jobs/{job_id}/result"
            )
            assert status == 200
            assert payload["analysis"] == {"stub": True, "degraded": False}
        finally:
            handle.stop()

        # and the raw store agrees
        store = JobStore(persist_path=persist)
        record = store.payload(job_id, include_result=True)
        assert record["state"] == "succeeded"
        assert record["seed"] == 11
