"""Tests for first-frame annotation (simulated human + automatic)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.annotation import (
    AnnotationJitter,
    auto_annotate,
    simulate_human_annotation,
    standing_prior_angles,
)
from repro.model.pose import StickPose, pose_angle_errors
from repro.model.sticks import default_body
from repro.video.synthesis.render import person_mask_for_pose

BODY = default_body(60.0)
SHAPE = (120, 160)


class TestSimulatedHuman:
    def test_jitter_statistics(self, rng):
        true_pose = StickPose.standing(60.0, 50.0)
        jitter = AnnotationJitter(center_sigma=1.0, angle_sigma=3.0)
        errors = []
        for _ in range(30):
            ann = simulate_human_annotation(true_pose, BODY, jitter=jitter, rng=rng)
            errors.append(pose_angle_errors(ann.pose, true_pose).mean())
        mean_error = float(np.mean(errors))
        assert 0.5 < mean_error < 8.0

    def test_zero_jitter_exact(self):
        true_pose = StickPose.standing(60.0, 50.0)
        ann = simulate_human_annotation(
            true_pose, BODY, jitter=AnnotationJitter(0.0, 0.0)
        )
        assert ann.pose == true_pose

    def test_thickness_calibration_with_mask(self, rng):
        true_pose = StickPose.standing(60.0, 50.0)
        mask = person_mask_for_pose(true_pose, BODY, SHAPE)
        ann = simulate_human_annotation(true_pose, BODY, mask=mask, rng=rng)
        assert ann.dims.thicknesses != BODY.thicknesses  # re-estimated
        assert ann.dims.lengths == BODY.lengths

    def test_jitter_validation(self):
        with pytest.raises(ModelError):
            AnnotationJitter(center_sigma=-1.0)


class TestAutoAnnotate:
    def test_recovers_standing_pose_roughly(self):
        true_pose = StickPose.standing(60.0, 50.0)
        mask = person_mask_for_pose(true_pose, BODY, SHAPE)
        ann = auto_annotate(mask)
        # Centre within a few pixels, trunk near vertical.
        assert abs(ann.pose.x0 - true_pose.x0) < 5.0
        assert abs(ann.pose.y0 - true_pose.y0) < 8.0
        trunk = ann.pose.angle("trunk")
        assert trunk < 15.0 or trunk > 345.0

    def test_scales_to_silhouette(self):
        big_body = default_body(90.0)
        pose = StickPose.standing(70.0, 60.0)
        mask = person_mask_for_pose(pose, big_body, (160, 200))
        ann = auto_annotate(mask)
        assert ann.dims.stature == pytest.approx(big_body.stature, rel=0.15)

    def test_tiny_mask_rejected(self):
        mask = np.zeros((20, 20), dtype=bool)
        mask[10, 10] = True
        with pytest.raises(ModelError):
            auto_annotate(mask)


class TestStandingPrior:
    def test_prior_matches_standing_pose(self):
        assert standing_prior_angles() == StickPose.standing(0, 0).angles_deg
