"""Tests for hole detection and filling."""

import numpy as np

from repro.imaging.holes import fill_holes, hole_mask


class TestHoleMask:
    def test_enclosed_region_found(self):
        mask = np.ones((7, 7), dtype=bool)
        mask[2:5, 2:5] = False
        holes = hole_mask(mask)
        assert holes[3, 3]
        assert holes.sum() == 9

    def test_open_bay_is_not_a_hole(self):
        mask = np.ones((5, 5), dtype=bool)
        mask[0:3, 2] = False  # channel open to the top border
        assert not hole_mask(mask).any()

    def test_no_foreground(self):
        assert not hole_mask(np.zeros((4, 4), dtype=bool)).any()

    def test_diagonal_gap_leaks(self):
        # 4-connected background flood fill escapes through a diagonal
        # gap only if there is an edge-adjacent path; a solid diagonal
        # wall does not seal a hole.
        mask = np.zeros((5, 5), dtype=bool)
        for i in range(5):
            mask[i, i] = True
        assert not hole_mask(mask).any()


class TestFillHoles:
    def test_fills_large_hole(self):
        mask = np.ones((9, 9), dtype=bool)
        mask[3:6, 3:6] = False
        assert fill_holes(mask).all()

    def test_preserves_foreground(self):
        rng = np.random.default_rng(0)
        mask = rng.random((12, 12)) > 0.5
        filled = fill_holes(mask)
        assert (filled & mask).sum() == mask.sum()

    def test_idempotent(self):
        rng = np.random.default_rng(1)
        mask = rng.random((15, 15)) > 0.6
        once = fill_holes(mask)
        assert (fill_holes(once) == once).all()
