"""Tests for the VideoSequence container."""

import numpy as np
import pytest

from repro.errors import VideoError
from repro.video.sequence import VideoSequence


def _frames(n=4, h=6, w=8, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.random((h, w, 3)) for _ in range(n)]


class TestConstruction:
    def test_from_list(self):
        video = VideoSequence(_frames())
        assert len(video) == 4
        assert video.shape == (4, 6, 8, 3)
        assert video.height == 6 and video.width == 8

    def test_from_stacked_array(self):
        video = VideoSequence(np.stack(_frames()))
        assert len(video) == 4

    def test_empty_rejected(self):
        with pytest.raises(VideoError):
            VideoSequence([])

    def test_ragged_rejected(self):
        frames = _frames()
        frames.append(np.zeros((3, 3, 3)))
        with pytest.raises(VideoError):
            VideoSequence(frames)

    def test_frames_read_only(self):
        video = VideoSequence(_frames())
        with pytest.raises(ValueError):
            video.frames[0, 0, 0, 0] = 5.0


class TestAccess:
    def test_indexing_and_iteration(self):
        frames = _frames()
        video = VideoSequence(frames)
        assert np.allclose(video[2], frames[2])
        assert len(list(video)) == 4

    def test_clip(self):
        video = VideoSequence(_frames(6))
        clipped = video.clip(1, 4)
        assert len(clipped) == 3
        assert np.allclose(clipped[0], video[1])

    def test_clip_validation(self):
        video = VideoSequence(_frames(4))
        with pytest.raises(VideoError):
            video.clip(3, 2)
        with pytest.raises(VideoError):
            video.clip(0, 99)

    def test_map_frames(self):
        video = VideoSequence(_frames())
        darker = video.map_frames(lambda f: f * 0.5)
        assert np.allclose(darker[0], video[0] * 0.5)


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        video = VideoSequence(_frames())
        path = tmp_path / "video.npz"
        video.save(path)
        loaded = VideoSequence.load(path)
        assert np.allclose(loaded.frames, video.frames)

    def test_load_missing_key(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, other=np.zeros(3))
        with pytest.raises(VideoError):
            VideoSequence.load(path)
