"""Shared fixtures: synthetic jumps are expensive, so cache per session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.video.synthesis import SyntheticJumpConfig, synthesize_jump


@pytest.fixture(scope="session")
def jump():
    """A default clean synthetic jump (seed 0), shared by many tests."""
    return synthesize_jump(SyntheticJumpConfig(seed=0))


@pytest.fixture(scope="session")
def short_jump():
    """A 10-frame jump for tests that iterate over frames."""
    from repro.video.synthesis import JumpParameters

    return synthesize_jump(
        SyntheticJumpConfig(seed=7, params=JumpParameters(num_frames=10))
    )


@pytest.fixture()
def rng():
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(1234)
