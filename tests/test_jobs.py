"""Unit tests for the job subsystem: store, worker, manager, config."""

from __future__ import annotations

import threading

import pytest

from repro.config import config_from_dict, config_to_dict
from repro.errors import CancelledError, ConfigurationError
from repro.jobs import (
    JobManager,
    JobQueueFull,
    JobState,
    JobStore,
    JobsConfig,
)
from repro.perf.pool import WorkerPool
from repro.runtime import CancellationToken
from repro.service import ServiceConfig


class FakeClock:
    """An injectable, manually-advanced clock for TTL tests."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class StubAnalyzer:
    """A fake analyzer with the real STAGES tuple and a scripted run."""

    STAGES = ("segmentation", "tracking", "scoring")

    def __init__(self, result=None, error=None, barrier=None, started=None):
        self.result = result if result is not None else object()
        self.error = error
        self.barrier = barrier
        self.started = started

    def analyze(self, video, annotation=None, rng=None,
                instrumentation=None, cancel_token=None):
        if self.started is not None:
            self.started.set()
        for stage in self.STAGES:
            if cancel_token is not None:
                cancel_token.raise_if_cancelled(stage)
            if instrumentation is not None:
                instrumentation.event("runtime/stage_start", stage=stage)
                with instrumentation.span(stage):
                    pass
            if self.barrier is not None:
                self.barrier.wait(timeout=10)
        if self.error is not None:
            raise self.error
        return self.result


def _id_serializer(analysis):
    return {"analysis": "ok", "degraded": False}


class TestJobsConfig:
    def test_defaults_valid(self):
        config = JobsConfig()
        assert config.enabled and config.max_jobs >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_jobs": 0},
            {"result_ttl_seconds": 0.0},
            {"max_queued": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            JobsConfig(**kwargs)

    def test_round_trips_through_service_config(self):
        config = ServiceConfig(
            jobs=JobsConfig(max_jobs=7, result_ttl_seconds=1.5)
        )
        data = config_to_dict(config)
        assert data["jobs"]["max_jobs"] == 7
        restored = config_from_dict(ServiceConfig, data)
        assert restored == config

    def test_unknown_jobs_key_rejected(self):
        data = config_to_dict(ServiceConfig())
        data["jobs"]["nope"] = 1
        with pytest.raises(ConfigurationError):
            config_from_dict(ServiceConfig, data)


class TestJobStore:
    def test_ids_are_deterministic(self):
        digest = JobStore.digest_of(b"video-bytes", "3", "cafe")
        first = JobStore(capacity=4).create(digest, seed=3)
        second = JobStore(capacity=4).create(digest, seed=3)
        assert first["id"] == second["id"]
        assert first["id"].startswith("j00001-")

    def test_lifecycle_to_success(self):
        store = JobStore(capacity=4)
        job_id = store.create("d" * 10)["id"]
        assert store.mark_running(job_id, total_stages=3)
        store.update_progress(job_id, current_stage="tracking")
        assert store.payload(job_id)["progress"]["current_stage"] == "tracking"
        store.update_progress(job_id, completed_stage="tracking")
        store.finish(job_id, JobState.SUCCEEDED, result={"x": 1})
        payload = store.payload(job_id, include_result=True)
        assert payload["state"] == "succeeded"
        assert payload["result"] == {"x": 1}
        assert payload["progress"]["fraction"] == 1.0

    def test_finish_requires_terminal_state(self):
        store = JobStore(capacity=4)
        job_id = store.create("d" * 10)["id"]
        with pytest.raises(ConfigurationError):
            store.finish(job_id, "running")

    def test_cancel_of_queued_job_is_immediate(self):
        store = JobStore(capacity=4)
        job_id = store.create("d" * 10)["id"]
        assert store.request_cancel(job_id) == "cancelled"
        assert store.payload(job_id)["state"] == "cancelled"
        # a worker picking it up afterwards must not run it
        assert not store.mark_running(job_id)

    def test_cancel_outcomes(self):
        store = JobStore(capacity=4)
        job_id = store.create("d" * 10)["id"]
        store.mark_running(job_id)
        assert store.request_cancel(job_id) == "cancelling"
        store.finish(job_id, JobState.CANCELLED)
        assert store.request_cancel(job_id) == "finished"
        assert store.request_cancel("missing") is None

    def test_lru_evicts_only_terminal_jobs(self):
        store = JobStore(capacity=2)
        first = store.create("a" * 10)["id"]
        store.mark_running(first)  # non-terminal: never evicted
        second = store.create("b" * 10)["id"]
        store.finish(second, JobState.FAILED, error={"type": "X", "message": ""})
        third = store.create("c" * 10)["id"]
        assert store.payload(second) is None  # oldest terminal went
        assert store.payload(first) is not None
        assert store.payload(third) is not None

    def test_ttl_eviction_remembers_expired_ids(self):
        clock = FakeClock()
        store = JobStore(capacity=4, ttl_seconds=10.0, clock=clock)
        job_id = store.create("d" * 10)["id"]
        store.finish(job_id, JobState.SUCCEEDED, result={"x": 1})
        clock.advance(5.0)
        assert store.payload(job_id) is not None
        clock.advance(6.0)
        assert store.payload(job_id) is None
        assert store.is_expired(job_id)
        assert not store.is_expired("never-existed")

    def test_listing_is_newest_first_and_bounded(self):
        store = JobStore(capacity=16)
        ids = [store.create(f"{i:010d}")["id"] for i in range(5)]
        listed = store.list_payload(limit=3)
        assert [job["id"] for job in listed] == list(reversed(ids))[:3]
        with pytest.raises(ConfigurationError):
            store.list_payload(state="bogus")

    def test_listing_filters_by_state(self):
        store = JobStore(capacity=16)
        done = store.create("a" * 10)["id"]
        store.finish(done, JobState.SUCCEEDED, result={})
        store.create("b" * 10)
        succeeded = store.list_payload(state=JobState.SUCCEEDED)
        assert [job["id"] for job in succeeded] == [done]


class TestJobStorePersistence:
    def test_round_trip_preserves_terminal_jobs(self, tmp_path):
        path = tmp_path / "jobs.json"
        store = JobStore(capacity=4, persist_path=path)
        job_id = store.create("d" * 10, seed=5, config_hash="cafe")["id"]
        store.mark_running(job_id, total_stages=3)
        store.finish(job_id, JobState.SUCCEEDED, result={"score": 0.5})

        reopened = JobStore(capacity=4, persist_path=path)
        payload = reopened.payload(job_id, include_result=True)
        assert payload["state"] == "succeeded"
        assert payload["result"] == {"score": 0.5}
        assert payload["seed"] == 5
        assert payload["config_hash"] == "cafe"

    def test_interrupted_jobs_are_failed_on_load(self, tmp_path):
        path = tmp_path / "jobs.json"
        store = JobStore(capacity=4, persist_path=path)
        job_id = store.create("d" * 10)["id"]
        store.mark_running(job_id)

        reopened = JobStore(capacity=4, persist_path=path)
        payload = reopened.payload(job_id)
        assert payload["state"] == "failed"
        assert payload["error"]["type"] == "Interrupted"

    def test_sequence_continues_after_reload(self, tmp_path):
        path = tmp_path / "jobs.json"
        store = JobStore(capacity=4, persist_path=path)
        first = store.create("a" * 10)["id"]
        reopened = JobStore(capacity=4, persist_path=path)
        second = reopened.create("b" * 10)["id"]
        assert first.startswith("j00001-")
        assert second.startswith("j00002-")

    def test_corrupt_file_raises_configuration_error(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text("{nope")
        with pytest.raises(ConfigurationError):
            JobStore(capacity=4, persist_path=path)


class TestJobWorkerPool:
    def _manager(self, **config):
        pool = WorkerPool(2, thread_name_prefix="test-jobs")
        manager = JobManager(
            JobsConfig(**config), pool, serializer=_id_serializer
        )
        return pool, manager

    def test_success_path(self):
        pool, manager = self._manager()
        try:
            analyzer = StubAnalyzer()
            job = manager.submit_analysis(analyzer, video=None, digest="a" * 10)
            self._wait_terminal(manager, job["id"])
            payload = manager.payload(job["id"], include_result=True)
            assert payload["state"] == "succeeded"
            assert payload["result"] == {"analysis": "ok", "degraded": False}
            assert payload["progress"]["fraction"] == 1.0
            assert payload["progress"]["stages_completed"] == list(
                StubAnalyzer.STAGES
            )
        finally:
            pool.shutdown()

    def test_repro_error_maps_to_failed_with_type(self):
        from repro.errors import TrackingError

        pool, manager = self._manager()
        try:
            analyzer = StubAnalyzer(error=TrackingError("lost the jumper"))
            job = manager.submit_analysis(analyzer, video=None, digest="b" * 10)
            self._wait_terminal(manager, job["id"])
            payload = manager.payload(job["id"])
            assert payload["state"] == "failed"
            assert payload["error"]["type"] == "TrackingError"
            assert "lost the jumper" in payload["error"]["message"]
        finally:
            pool.shutdown()

    def test_unexpected_error_maps_to_internal(self):
        pool, manager = self._manager()
        try:
            analyzer = StubAnalyzer(error=RuntimeError("boom"))
            job = manager.submit_analysis(analyzer, video=None, digest="c" * 10)
            self._wait_terminal(manager, job["id"])
            payload = manager.payload(job["id"])
            assert payload["state"] == "failed"
            assert payload["error"]["type"] == "InternalError"
        finally:
            pool.shutdown()

    def test_cancel_mid_run_lands_as_cancelled(self):
        pool, manager = self._manager()
        try:
            started = threading.Event()
            barrier = threading.Event()
            analyzer = StubAnalyzer(started=started, barrier=barrier)
            job = manager.submit_analysis(analyzer, video=None, digest="d" * 10)
            assert started.wait(timeout=10)
            assert manager.cancel(job["id"]) == "cancelling"
            barrier.set()  # let the stage loop reach the next check
            self._wait_terminal(manager, job["id"])
            payload = manager.payload(job["id"])
            assert payload["state"] == "cancelled"
            assert payload["error"]["type"] == "CancelledError"

            # the pool is not poisoned: a follow-up job still succeeds
            ok = manager.submit_analysis(
                StubAnalyzer(barrier=barrier), video=None, digest="e" * 10
            )
            self._wait_terminal(manager, ok["id"])
            assert manager.payload(ok["id"])["state"] == "succeeded"
        finally:
            pool.shutdown()

    def test_queue_full_rejects_without_creating(self):
        pool, manager = self._manager(max_queued=1)
        try:
            barrier = threading.Event()
            started = threading.Event()
            manager.submit_analysis(
                StubAnalyzer(barrier=barrier, started=started),
                video=None,
                digest="f" * 10,
            )
            assert started.wait(timeout=10)
            with pytest.raises(JobQueueFull):
                manager.submit_analysis(
                    StubAnalyzer(), video=None, digest="g" * 10
                )
            assert manager.store.stats()["created"] == 1
            barrier.set()
        finally:
            pool.shutdown()

    @staticmethod
    def _wait_terminal(manager, job_id, timeout=10.0):
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if manager.payload(job_id)["state"] in JobState.TERMINAL:
                return
            time.sleep(0.005)
        raise AssertionError(f"job {job_id} never became terminal")


class TestCancellationToken:
    def test_raises_only_after_cancel(self):
        token = CancellationToken()
        token.raise_if_cancelled("segmentation")  # no-op
        assert not token.cancelled
        token.cancel()
        assert token.cancelled
        with pytest.raises(CancelledError, match="segmentation"):
            token.raise_if_cancelled("segmentation")

    def test_runner_checks_between_stages(self):
        from repro.runtime import (
            FunctionStage,
            PipelineRunner,
            StageContext,
            Instrumentation,
        )

        token = CancellationToken()
        seen = []

        def first(value, context):
            seen.append("first")
            token.cancel()  # cancel lands while a stage is running
            return value

        def second(value, context):
            seen.append("second")
            return value

        runner = PipelineRunner(
            [FunctionStage("first", first), FunctionStage("second", second)]
        )
        context = StageContext(
            instrumentation=Instrumentation(), cancel_token=token
        )
        with pytest.raises(CancelledError, match="second"):
            runner.run(0, context=context)
        assert seen == ["first"]  # the running stage completed; the next never ran
